"""Register spilling: IR-level rewriting when the pool is exhausted.

Spilling happens *before* code generation, at the IR level: a spilled
virtual register is demoted to a memory slot (a reserved region below the
device-mapped data segment, so spill traffic is not observable output),
and every definition/use is rewritten through fresh short-lived virtual
registers::

    v  = a + b            ==>   t1 = a + b
    ...                         st slot, t1
    use v                       ...
                                t2 = ld slot
                                use t2

Rewriting at the IR level means the reliability transformation duplicates
spill code like any other code -- spill stores become checked
``stG``/``stB`` pairs and reloads become ``ldG``/``ldB`` pairs, so spilled
programs remain fully typed and fully fault tolerant.

The allocator loop is Poletto-style linear scan with
furthest-end-first victim selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import CompileError
from repro.compiler.ir import (
    CFG,
    IBin,
    IConst,
    ILoad,
    IROp,
    IStore,
    TBranchZero,
    VReg,
    op_def,
    op_uses,
)
from repro.compiler.regalloc import LiveRange, live_ranges

#: Spill slots live here -- below the device-mapped data segment
#: (``repro.compiler.layout.DATA_BASE`` = 65536), so spill stores update
#: memory without producing observable output.
SPILL_BASE = 32768

_MAX_SPILLS = 256


@dataclass
class SpillState:
    """Slots handed out so far (address -> spilled vreg provenance)."""

    next_address: int = SPILL_BASE
    slots: Dict[int, VReg] = field(default_factory=dict)

    def allocate(self, victim: VReg) -> int:
        address = self.next_address
        self.next_address += 1
        self.slots[address] = victim
        return address


def _max_vreg_index(cfg: CFG) -> int:
    top = 0
    for block in cfg.iter_blocks():
        for op in block.ops:
            for vreg in op_uses(op):
                top = max(top, vreg.index)
            dst = op_def(op)
            if dst is not None:
                top = max(top, dst.index)
        if isinstance(block.terminator, TBranchZero):
            top = max(top, block.terminator.cond.index)
    return top


def _replace_uses(op: IROp, old: VReg, new: VReg) -> IROp:
    if isinstance(op, IBin):
        return IBin(
            op.op,
            op.dst,
            new if op.lhs == old else op.lhs,
            new if op.rhs == old else op.rhs,
        )
    if isinstance(op, ILoad):
        return ILoad(op.dst, new if op.addr == old else op.addr)
    if isinstance(op, IStore):
        return IStore(
            new if op.addr == old else op.addr,
            new if op.src == old else op.src,
        )
    return op


def _replace_def(op: IROp, new: VReg) -> IROp:
    if isinstance(op, IConst):
        return IConst(new, op.value)
    if isinstance(op, IBin):
        return IBin(op.op, new, op.lhs, op.rhs)
    if isinstance(op, ILoad):
        return ILoad(new, op.addr)
    raise CompileError(f"cannot rewrite definition of {op!r}")


def spill_rewrite(cfg: CFG, victim: VReg, slot_address: int) -> None:
    """Demote ``victim`` to ``slot_address`` throughout the CFG."""
    counter = [_max_vreg_index(cfg)]

    def fresh() -> VReg:
        counter[0] += 1
        return VReg(counter[0])

    for block in cfg.iter_blocks():
        new_ops: List[IROp] = []
        for op in block.ops:
            if victim in op_uses(op):
                address_reg = fresh()
                value_reg = fresh()
                new_ops.append(IConst(address_reg, slot_address))
                new_ops.append(ILoad(value_reg, address_reg))
                op = _replace_uses(op, victim, value_reg)
            if op_def(op) == victim:
                value_reg = fresh()
                address_reg = fresh()
                new_ops.append(_replace_def(op, value_reg))
                new_ops.append(IConst(address_reg, slot_address))
                new_ops.append(IStore(address_reg, value_reg))
                continue
            new_ops.append(op)
        block.ops = new_ops
        terminator = block.terminator
        if isinstance(terminator, TBranchZero) and terminator.cond == victim:
            address_reg = fresh()
            value_reg = fresh()
            block.ops.append(IConst(address_reg, slot_address))
            block.ops.append(ILoad(value_reg, address_reg))
            block.terminator = TBranchZero(
                value_reg, terminator.if_zero, terminator.if_nonzero
            )


def _try_linear_scan(
    ranges: Sequence[LiveRange], pool: Sequence[str]
) -> Tuple[Optional[Dict[VReg, str]], Optional[VReg]]:
    """Linear scan; on pressure, return the furthest-end victim instead.

    Uses the same FIFO (round-robin) free list as
    :func:`repro.compiler.regalloc.linear_scan` to minimize false
    dependences in the generated code.
    """
    from collections import deque

    free = deque(pool)
    active: List[Tuple[int, VReg, str]] = []
    assignment: Dict[VReg, str] = {}
    for rng in ranges:
        still_active = []
        for end, vreg, reg in active:
            if end < rng.start:
                free.append(reg)
            else:
                still_active.append((end, vreg, reg))
        active = still_active
        if not free:
            candidates = [(end, vreg) for end, vreg, _reg in active]
            candidates.append((rng.end, rng.vreg))
            _end, victim = max(candidates,
                               key=lambda pair: (pair[0], pair[1].index))
            return None, victim
        reg = free.popleft()
        assignment[rng.vreg] = reg
        active.append((rng.end, rng.vreg, reg))
    return assignment, None


def allocate_with_spilling(
    cfg: CFG,
    pool: Sequence[str],
    spill_state: Optional[SpillState] = None,
) -> Tuple[Dict[VReg, str], SpillState]:
    """Allocate, spilling (and rewriting the CFG) until everything fits."""
    spill_state = spill_state or SpillState()
    for _ in range(_MAX_SPILLS):
        assignment, victim = _try_linear_scan(live_ranges(cfg), pool)
        if assignment is not None:
            return assignment, spill_state
        assert victim is not None
        spill_rewrite(cfg, victim, spill_state.allocate(victim))
    raise CompileError(
        f"register allocation did not converge after {_MAX_SPILLS} spills"
    )
