"""Reference interpreter for MWL.

Defines the language's semantics independently of the compiler; the
compiler test-suite checks that compiled machine code produces exactly the
interpreter's observable behavior.

Observable behavior = the ordered sequence of array writes
``(array_name, masked_index, value)`` -- on the machine every committed
store is visible to the memory-mapped output device, and arrays are the
only memory-resident objects (scalars live in registers).

Array indexing is *masked*: each array's storage is rounded up to a power
of two and indices are reduced with ``index & (storage - 1)``, matching the
compiled code's masked-region addressing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import SourceError
from repro.core.instructions import alu_eval
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    Function,
    If,
    Index,
    IntLit,
    Name,
    Return,
    SourceProgram,
    Stmt,
    Unary,
    VarDecl,
    While,
)


class InterpLimit(SourceError):
    """The step budget was exhausted (runaway loop guard)."""


def storage_size(declared: int) -> int:
    """Array storage rounded up to the next power of two."""
    size = 1
    while size < declared:
        size *= 2
    return size


#: MWL binary operators in terms of machine ALU ops.
_BIN_OPS = {
    "+": "add", "-": "sub", "*": "mul",
    "<": "slt", "==": "seq", "!=": "sne",
    "&": "and", "|": "or", "^": "xor",
    "<<": "sll", ">>": "sra",
}


@dataclass
class InterpResult:
    """Observable outcome of interpreting a program."""

    writes: List[Tuple[str, int, int]]
    arrays: Dict[str, List[int]]
    globals: Dict[str, int]
    steps: int


class _ReturnSignal(Exception):
    def __init__(self, value: Optional[int]):
        self.value = value


@dataclass
class _Frame:
    locals: Dict[str, int] = field(default_factory=dict)


class Interpreter:
    """Evaluates a checked :class:`SourceProgram`."""

    def __init__(self, program: SourceProgram, max_steps: int = 5_000_000):
        self.program = program
        self.max_steps = max_steps
        self.steps = 0
        self.globals: Dict[str, int] = {
            g.name: g.init for g in program.globals
        }
        self.arrays: Dict[str, List[int]] = {}
        self.masks: Dict[str, int] = {}
        for array in program.arrays:
            storage = storage_size(array.size)
            cells = list(array.init) + [0] * (storage - len(array.init))
            self.arrays[array.name] = cells
            self.masks[array.name] = storage - 1
        self.writes: List[Tuple[str, int, int]] = []

    def _tick(self, line: int = 0) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpLimit("interpreter step budget exhausted", line)

    def run(self) -> InterpResult:
        frame = _Frame()
        self.exec_body(self.program.main, frame)
        return InterpResult(
            writes=list(self.writes),
            arrays={name: list(cells) for name, cells in self.arrays.items()},
            globals=dict(self.globals),
            steps=self.steps,
        )

    # -- statements ---------------------------------------------------------

    def exec_body(self, body, frame: _Frame) -> None:
        for stmt in body:
            self.exec_stmt(stmt, frame)

    def exec_stmt(self, stmt: Stmt, frame: _Frame) -> None:
        self._tick(stmt.line)
        if isinstance(stmt, VarDecl):
            frame.locals[stmt.name] = self.eval(stmt.init, frame)
        elif isinstance(stmt, Assign):
            value = self.eval(stmt.value, frame)
            if stmt.name in frame.locals:
                frame.locals[stmt.name] = value
            else:
                self.globals[stmt.name] = value
        elif isinstance(stmt, ArrayAssign):
            index = self.eval(stmt.index, frame) & self.masks[stmt.array]
            value = self.eval(stmt.value, frame)
            self.arrays[stmt.array][index] = value
            self.writes.append((stmt.array, index, value))
        elif isinstance(stmt, If):
            if self.eval(stmt.cond, frame) != 0:
                self.exec_body(stmt.then_body, frame)
            else:
                self.exec_body(stmt.else_body, frame)
        elif isinstance(stmt, While):
            while self.eval(stmt.cond, frame) != 0:
                self._tick(stmt.line)
                self.exec_body(stmt.body, frame)
        elif isinstance(stmt, ExprStmt):
            self.eval(stmt.expr, frame, allow_void=True)
        elif isinstance(stmt, Return):
            value = self.eval(stmt.value, frame) if stmt.value else None
            raise _ReturnSignal(value)
        else:
            raise SourceError(f"unknown statement {stmt!r}", stmt.line)

    # -- expressions ---------------------------------------------------------

    def eval(self, expr: Expr, frame: _Frame, allow_void: bool = False) -> int:
        self._tick(expr.line)
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, Name):
            if expr.ident in frame.locals:
                return frame.locals[expr.ident]
            return self.globals[expr.ident]
        if isinstance(expr, Index):
            index = self.eval(expr.index, frame) & self.masks[expr.array]
            return self.arrays[expr.array][index]
        if isinstance(expr, Binary):
            left = self.eval(expr.left, frame)
            right = self.eval(expr.right, frame)
            if expr.op in _BIN_OPS:
                return alu_eval(_BIN_OPS[expr.op], left, right)
            if expr.op == "&&":
                return 1 if left != 0 and right != 0 else 0
            if expr.op == "||":
                return 1 if left != 0 or right != 0 else 0
            if expr.op == "<=":
                return 1 if left <= right else 0
            if expr.op == ">":
                return 1 if left > right else 0
            if expr.op == ">=":
                return 1 if left >= right else 0
            raise SourceError(f"unknown operator {expr.op!r}", expr.line)
        if isinstance(expr, Unary):
            operand = self.eval(expr.operand, frame)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return 1 if operand == 0 else 0
            raise SourceError(f"unknown operator {expr.op!r}", expr.line)
        if isinstance(expr, Call):
            function = self.program.function(expr.func)
            assert function is not None  # checked earlier
            arguments = [self.eval(arg, frame) for arg in expr.args]
            callee = _Frame(dict(zip(function.params, arguments)))
            try:
                self.exec_body(function.body, callee)
            except _ReturnSignal as signal:
                if signal.value is None and not allow_void:
                    raise SourceError(
                        f"{expr.func!r} returned no value", expr.line
                    ) from None
                return signal.value if signal.value is not None else 0
            if not allow_void:
                raise SourceError(
                    f"{expr.func!r} returned no value", expr.line
                )
            return 0
        raise SourceError(f"unknown expression {expr!r}", expr.line)


def interpret(program: SourceProgram, max_steps: int = 5_000_000) -> InterpResult:
    """Parse-tree in, observable behavior out."""
    return Interpreter(program, max_steps=max_steps).run()
