"""MWL pretty-printer: render a :class:`SourceProgram` back to source.

The inverse of :func:`repro.lang.parser.parse_source`, up to whitespace
and redundant parentheses: ``parse_source(format_source(ast))`` is
structurally equal to ``ast`` (pinned by ``tests/test_fuzz.py``).  The
fuzzer's minimizer edits ASTs and needs to persist each reduced candidate
as real source; the corpus stores programs as text so they replay through
the ordinary front end.

Expressions are printed fully parenthesized -- minimized repros are read
by humans chasing a divergence, and explicit grouping beats re-deriving
the precedence table.
"""

from __future__ import annotations

from typing import List

from repro.lang.ast import (
    ArrayAssign,
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    If,
    Index,
    IntLit,
    Name,
    Return,
    SourceProgram,
    Stmt,
    Unary,
    VarDecl,
    While,
)


def format_expr(expr: Expr) -> str:
    """One expression as parseable MWL text."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, Index):
        return f"{expr.array}[{format_expr(expr.index)}]"
    if isinstance(expr, Binary):
        return (f"({format_expr(expr.left)} {expr.op} "
                f"{format_expr(expr.right)})")
    if isinstance(expr, Unary):
        # ``--x`` would lex as an integer literal's sign plus a minus;
        # parenthesizing the operand keeps every nesting unambiguous.
        return f"{expr.op}({format_expr(expr.operand)})"
    if isinstance(expr, Call):
        args = ", ".join(format_expr(arg) for arg in expr.args)
        return f"{expr.func}({args})"
    raise ValueError(f"unknown expression {expr!r}")


def _format_stmt(stmt: Stmt, indent: int, lines: List[str]) -> None:
    pad = "    " * indent
    if isinstance(stmt, VarDecl):
        lines.append(f"{pad}var {stmt.name} = {format_expr(stmt.init)};")
    elif isinstance(stmt, Assign):
        lines.append(f"{pad}{stmt.name} = {format_expr(stmt.value)};")
    elif isinstance(stmt, ArrayAssign):
        lines.append(f"{pad}{stmt.array}[{format_expr(stmt.index)}] = "
                     f"{format_expr(stmt.value)};")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if ({format_expr(stmt.cond)}) {{")
        for inner in stmt.then_body:
            _format_stmt(inner, indent + 1, lines)
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                _format_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, While):
        lines.append(f"{pad}while ({format_expr(stmt.cond)}) {{")
        for inner in stmt.body:
            _format_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ExprStmt):
        lines.append(f"{pad}{format_expr(stmt.expr)};")
    elif isinstance(stmt, Return):
        if stmt.value is None:
            lines.append(f"{pad}return;")
        else:
            lines.append(f"{pad}return {format_expr(stmt.value)};")
    else:
        raise ValueError(f"unknown statement {stmt!r}")


def format_source(program: SourceProgram) -> str:
    """The whole program as parseable MWL text (trailing newline)."""
    lines: List[str] = []
    for item in program.globals:
        lines.append(f"var {item.name} = {item.init};")
    for array in program.arrays:
        if array.init:
            init = ", ".join(str(value) for value in array.init)
            lines.append(f"array {array.name}[{array.size}] = {{{init}}};")
        else:
            lines.append(f"array {array.name}[{array.size}];")
    for function in program.functions:
        params = ", ".join(function.params)
        lines.append(f"fn {function.name}({params}) {{")
        for stmt in function.body:
            _format_stmt(stmt, 1, lines)
        lines.append("}")
    for stmt in program.main:
        _format_stmt(stmt, 0, lines)
    return "\n".join(lines) + "\n"
