"""MWL: the mini while-language consumed by the reproduction's compiler."""

from repro.lang.ast import (
    ArrayAssign,
    ArrayDecl,
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    Function,
    GlobalVar,
    If,
    Index,
    IntLit,
    Name,
    Return,
    SourceProgram,
    Stmt,
    Unary,
    VarDecl,
    While,
)
from repro.lang.check import check_source
from repro.lang.interp import InterpResult, Interpreter, interpret, storage_size
from repro.lang.parser import parse_source
from repro.lang.printer import format_expr, format_source

__all__ = [
    "ArrayAssign",
    "ArrayDecl",
    "Assign",
    "Binary",
    "Call",
    "Expr",
    "ExprStmt",
    "Function",
    "GlobalVar",
    "If",
    "Index",
    "IntLit",
    "InterpResult",
    "Interpreter",
    "Name",
    "Return",
    "SourceProgram",
    "Stmt",
    "Unary",
    "VarDecl",
    "While",
    "check_source",
    "format_expr",
    "format_source",
    "interpret",
    "parse_source",
    "storage_size",
]
