"""Abstract syntax of MWL ("mini while language").

MWL is the source language of the reproduction's compiler -- the stand-in
for the C subset the paper's VELOCITY compiler consumed.  It has:

* integer globals (``var x = 0;``) and locals,
* fixed-size integer arrays living in machine memory (``array a[8];``),
  optionally initialized -- array writes are the *observable output* of a
  program (every committed store is visible to the memory-mapped device),
* non-recursive functions, always inlined by the compiler,
* ``if``/``else``, ``while``, assignment, and expression statements,
* the usual integer operators, including comparisons and bitwise ops.

Arrays are sized up to the next power of two and indexed modulo their size
(index masking); this is what lets compiled dynamic accesses live inside
the TAL_FT typed fragment (see DESIGN.md on masked-region addressing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class IntLit(Expr):
    value: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Name(Expr):
    ident: str = ""

    def __str__(self) -> str:
        return self.ident


@dataclass(frozen=True)
class Index(Expr):
    """``a[e]`` -- array read."""

    array: str = ""
    index: Optional[Expr] = None

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class Binary(Expr):
    """``e1 op e2``; the parser has already desugared comparisons."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Unary(Expr):
    """``-e`` or ``!e``."""

    op: str = ""
    operand: Optional[Expr] = None

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class Call(Expr):
    """``f(e1, ..., en)`` -- call of an inlinable function."""

    func: str = ""
    args: Tuple[Expr, ...] = ()

    def __str__(self) -> str:
        return f"{self.func}({', '.join(map(str, self.args))})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class VarDecl(Stmt):
    name: str = ""
    init: Optional[Expr] = None


@dataclass(frozen=True)
class Assign(Stmt):
    name: str = ""
    value: Optional[Expr] = None


@dataclass(frozen=True)
class ArrayAssign(Stmt):
    array: str = ""
    index: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass(frozen=True)
class If(Stmt):
    cond: Optional[Expr] = None
    then_body: Tuple[Stmt, ...] = ()
    else_body: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    cond: Optional[Expr] = None
    body: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """A bare call for its side effects (calls may write arrays)."""

    expr: Optional[Expr] = None


@dataclass(frozen=True)
class Return(Stmt):
    """Only valid as the final statement of a function body."""

    value: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Top-level items
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GlobalVar:
    name: str
    init: int
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class ArrayDecl:
    name: str
    size: int
    init: Tuple[int, ...] = ()
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Function:
    name: str
    params: Tuple[str, ...]
    body: Tuple[Stmt, ...]
    line: int = field(default=0, compare=False)

    @property
    def returns_value(self) -> bool:
        return bool(self.body) and isinstance(self.body[-1], Return) \
            and self.body[-1].value is not None


@dataclass(frozen=True)
class SourceProgram:
    globals: Tuple[GlobalVar, ...]
    arrays: Tuple[ArrayDecl, ...]
    functions: Tuple[Function, ...]
    main: Tuple[Stmt, ...]

    def function(self, name: str) -> Optional[Function]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None

    def array(self, name: str) -> Optional[ArrayDecl]:
        for array in self.arrays:
            if array.name == name:
                return array
        return None
