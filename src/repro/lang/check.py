"""Semantic checks for MWL programs.

Beyond parse errors, programs must satisfy:

* names are unique across globals, arrays and functions, and locals do not
  shadow anything;
* variables are declared before use; arrays and functions are used as the
  right syntactic category with the right arity;
* functions are **non-recursive** (the compiler inlines every call) and a
  ``return`` appears only as the final statement of a function body;
* calls used as expressions return a value; call statements may call either.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from repro.core.errors import SourceError
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    Function,
    If,
    Index,
    IntLit,
    Name,
    Return,
    SourceProgram,
    Stmt,
    Unary,
    VarDecl,
    While,
)


def check_source(program: SourceProgram) -> None:
    """Raise :class:`SourceError` if ``program`` is semantically invalid."""
    _check_unique_toplevel(program)
    _check_no_recursion(program)
    for function in program.functions:
        _check_body(
            program, function.body, set(function.params),
            in_function=function,
        )
    _check_body(program, program.main, set(), in_function=None)


def _check_unique_toplevel(program: SourceProgram) -> None:
    seen: Set[str] = set()
    for item, kind in (
        [(g, "global") for g in program.globals]
        + [(a, "array") for a in program.arrays]
        + [(f, "function") for f in program.functions]
    ):
        if item.name in seen:
            raise SourceError(
                f"duplicate top-level name {item.name!r}", item.line
            )
        seen.add(item.name)
    for array in program.arrays:
        if array.size <= 0:
            raise SourceError(
                f"array {array.name!r} must have positive size", array.line
            )
        if len(array.init) > array.size:
            raise SourceError(
                f"array {array.name!r} has {len(array.init)} initializers "
                f"for {array.size} slots",
                array.line,
            )


def _check_no_recursion(program: SourceProgram) -> None:
    graph: Dict[str, Set[str]] = {
        fn.name: _called_functions(fn.body) for fn in program.functions
    }
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, chain) -> None:
        if name not in graph:
            return
        if state.get(name) == 1:
            return
        if state.get(name) == 0:
            cycle = " -> ".join(chain + [name])
            raise SourceError(f"recursive functions are not supported: {cycle}")
        state[name] = 0
        for callee in graph[name]:
            visit(callee, chain + [name])
        state[name] = 1

    for name in graph:
        visit(name, [])


def _called_functions(body: Sequence[Stmt]) -> Set[str]:
    called: Set[str] = set()

    def walk_expr(expr: Expr) -> None:
        if isinstance(expr, Call):
            called.add(expr.func)
            for arg in expr.args:
                walk_expr(arg)
        elif isinstance(expr, Binary):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, Index):
            walk_expr(expr.index)

    def walk_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            walk_expr(stmt.init)
        elif isinstance(stmt, Assign):
            walk_expr(stmt.value)
        elif isinstance(stmt, ArrayAssign):
            walk_expr(stmt.index)
            walk_expr(stmt.value)
        elif isinstance(stmt, If):
            walk_expr(stmt.cond)
            for inner in stmt.then_body + stmt.else_body:
                walk_stmt(inner)
        elif isinstance(stmt, While):
            walk_expr(stmt.cond)
            for inner in stmt.body:
                walk_stmt(inner)
        elif isinstance(stmt, ExprStmt):
            walk_expr(stmt.expr)
        elif isinstance(stmt, Return) and stmt.value is not None:
            walk_expr(stmt.value)

    for stmt in body:
        walk_stmt(stmt)
    return called


def _check_body(
    program: SourceProgram,
    body: Sequence[Stmt],
    locals_in_scope: Set[str],
    in_function,
    top_level: bool = True,
) -> None:
    reserved = (
        {g.name for g in program.globals}
        | {a.name for a in program.arrays}
        | {f.name for f in program.functions}
    )
    scope = set(locals_in_scope)

    for position, stmt in enumerate(body):
        if isinstance(stmt, VarDecl):
            if stmt.name in reserved or stmt.name in scope:
                raise SourceError(
                    f"{stmt.name!r} shadows an existing name", stmt.line
                )
            _check_expr(program, stmt.init, scope, stmt.line)
            scope.add(stmt.name)
        elif isinstance(stmt, Assign):
            if stmt.name not in scope and \
                    stmt.name not in {g.name for g in program.globals}:
                raise SourceError(
                    f"assignment to undeclared variable {stmt.name!r}",
                    stmt.line,
                )
            _check_expr(program, stmt.value, scope, stmt.line)
        elif isinstance(stmt, ArrayAssign):
            if program.array(stmt.array) is None:
                raise SourceError(
                    f"store to undeclared array {stmt.array!r}", stmt.line
                )
            _check_expr(program, stmt.index, scope, stmt.line)
            _check_expr(program, stmt.value, scope, stmt.line)
        elif isinstance(stmt, If):
            _check_expr(program, stmt.cond, scope, stmt.line)
            _check_body(program, stmt.then_body, scope, in_function,
                        top_level=False)
            _check_body(program, stmt.else_body, scope, in_function,
                        top_level=False)
        elif isinstance(stmt, While):
            _check_expr(program, stmt.cond, scope, stmt.line)
            _check_body(program, stmt.body, scope, in_function,
                        top_level=False)
        elif isinstance(stmt, ExprStmt):
            if not isinstance(stmt.expr, Call):
                raise SourceError(
                    "only calls may be used as statements", stmt.line
                )
            _check_expr(program, stmt.expr, scope, stmt.line,
                        allow_void_call=True)
        elif isinstance(stmt, Return):
            if in_function is None:
                raise SourceError("return outside a function", stmt.line)
            if not top_level or position != len(body) - 1:
                raise SourceError(
                    "return must be the final statement of a function body",
                    stmt.line,
                )
            if stmt.value is not None:
                _check_expr(program, stmt.value, scope, stmt.line)
        else:
            raise SourceError(f"unknown statement {stmt!r}", stmt.line)


def _check_expr(
    program: SourceProgram,
    expr: Expr,
    scope: Set[str],
    line: int,
    allow_void_call: bool = False,
) -> None:
    if isinstance(expr, IntLit):
        return
    if isinstance(expr, Name):
        if expr.ident in scope or \
                any(g.name == expr.ident for g in program.globals):
            return
        if program.array(expr.ident) is not None:
            raise SourceError(
                f"array {expr.ident!r} used without an index", expr.line or line
            )
        raise SourceError(f"undeclared variable {expr.ident!r}",
                          expr.line or line)
    if isinstance(expr, Index):
        if program.array(expr.array) is None:
            raise SourceError(f"undeclared array {expr.array!r}",
                              expr.line or line)
        _check_expr(program, expr.index, scope, line)
        return
    if isinstance(expr, Binary):
        _check_expr(program, expr.left, scope, line)
        _check_expr(program, expr.right, scope, line)
        return
    if isinstance(expr, Unary):
        _check_expr(program, expr.operand, scope, line)
        return
    if isinstance(expr, Call):
        function = program.function(expr.func)
        if function is None:
            raise SourceError(f"call to undefined function {expr.func!r}",
                              expr.line or line)
        if len(expr.args) != len(function.params):
            raise SourceError(
                f"{expr.func!r} takes {len(function.params)} arguments, "
                f"got {len(expr.args)}",
                expr.line or line,
            )
        if not allow_void_call and not function.returns_value:
            raise SourceError(
                f"{expr.func!r} returns no value but is used as an expression",
                expr.line or line,
            )
        for arg in expr.args:
            _check_expr(program, arg, scope, line)
        return
    raise SourceError(f"unknown expression {expr!r}", line)
