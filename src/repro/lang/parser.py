"""Recursive-descent parser for MWL.

Grammar (C-flavored; ``//`` comments)::

    program  := item* stmt*
    item     := "var" IDENT "=" INT ";"
              | "array" IDENT "[" INT "]" ("=" "{" INT ("," INT)* "}")? ";"
              | "fn" IDENT "(" params? ")" block
    stmt     := "var" IDENT "=" expr ";"
              | IDENT "=" expr ";"
              | IDENT "[" expr "]" "=" expr ";"
              | "if" "(" expr ")" block ("else" block)?
              | "while" "(" expr ")" block
              | "return" expr? ";"
              | expr ";"

    expr     := precedence climbing over
                ||  &&  |  ^  &  == !=  < <= > >=  << >>  + -  * ,
                with unary - and !

There is no division or modulo operator: the machine's ALU (like the
paper's) has none, and array indices are masked rather than range-checked.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.core.errors import SourceError
from repro.lang.ast import (
    ArrayAssign,
    ArrayDecl,
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    Function,
    GlobalVar,
    If,
    Index,
    IntLit,
    Name,
    Return,
    SourceProgram,
    Stmt,
    Unary,
    VarDecl,
    While,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<int>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct><<|>>|<=|>=|==|!=|&&|\|\||[-+*!&|^<>=(){}\[\],;])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"var", "array", "fn", "if", "else", "while", "return"}

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10,
}


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise SourceError(
                f"unexpected character {source[position]!r}", line
            )
        text = match.group(0)
        kind = match.lastgroup or ""
        if kind == "ws" or kind == "comment":
            line += text.count("\n")
        elif kind == "int":
            tokens.append(_Token("int", text, line))
        elif kind == "ident":
            tokens.append(
                _Token(text if text in _KEYWORDS else "ident", text, line)
            )
        else:
            tokens.append(_Token(text, text, line))
        position = match.end()
    tokens.append(_Token("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.index = 0

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def next(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise SourceError(
                f"expected {kind!r}, found {token.text!r}", token.line
            )
        return token

    def match(self, kind: str) -> bool:
        if self.peek().kind == kind:
            self.next()
            return True
        return False

    # -- expressions --------------------------------------------------------

    def parse_expr(self, min_precedence: int = 1) -> Expr:
        left = self.parse_unary()
        while True:
            op = self.peek().kind
            precedence = _PRECEDENCE.get(op)
            if precedence is None or precedence < min_precedence:
                return left
            line = self.next().line
            right = self.parse_expr(precedence + 1)
            left = Binary(line=line, op=op, left=left, right=right)

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.kind == "-":
            line = self.next().line
            return Unary(line=line, op="-", operand=self.parse_unary())
        if token.kind == "!":
            line = self.next().line
            return Unary(line=line, op="!", operand=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.next()
        if token.kind == "int":
            return IntLit(line=token.line, value=int(token.text))
        if token.kind == "(":
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if token.kind == "ident":
            name = token.text
            if self.peek().kind == "[":
                self.next()
                index = self.parse_expr()
                self.expect("]")
                return Index(line=token.line, array=name, index=index)
            if self.peek().kind == "(":
                self.next()
                args: List[Expr] = []
                if self.peek().kind != ")":
                    args.append(self.parse_expr())
                    while self.match(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return Call(line=token.line, func=name, args=tuple(args))
            return Name(line=token.line, ident=name)
        raise SourceError(
            f"expected an expression, found {token.text!r}", token.line
        )

    # -- statements ---------------------------------------------------------

    def parse_block(self) -> Tuple[Stmt, ...]:
        self.expect("{")
        statements: List[Stmt] = []
        while not self.match("}"):
            statements.append(self.parse_stmt())
        return tuple(statements)

    def parse_stmt(self) -> Stmt:
        token = self.peek()
        if token.kind == "var":
            line = self.next().line
            name = self.expect("ident").text
            self.expect("=")
            init = self.parse_expr()
            self.expect(";")
            return VarDecl(line=line, name=name, init=init)
        if token.kind == "if":
            line = self.next().line
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then_body = self.parse_block()
            else_body: Tuple[Stmt, ...] = ()
            if self.match("else"):
                else_body = self.parse_block()
            return If(line=line, cond=cond, then_body=then_body,
                      else_body=else_body)
        if token.kind == "while":
            line = self.next().line
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            body = self.parse_block()
            return While(line=line, cond=cond, body=body)
        if token.kind == "return":
            line = self.next().line
            value: Optional[Expr] = None
            if self.peek().kind != ";":
                value = self.parse_expr()
            self.expect(";")
            return Return(line=line, value=value)
        if token.kind == "ident":
            # Could be assignment, array assignment, or a call statement.
            name_token = self.next()
            name = name_token.text
            if self.match("="):
                value = self.parse_expr()
                self.expect(";")
                return Assign(line=name_token.line, name=name, value=value)
            if self.peek().kind == "[":
                self.next()
                index = self.parse_expr()
                self.expect("]")
                if self.match("="):
                    value = self.parse_expr()
                    self.expect(";")
                    return ArrayAssign(line=name_token.line, array=name,
                                       index=index, value=value)
                raise SourceError("expected '=' after array index",
                                  name_token.line)
            if self.peek().kind == "(":
                self.next()
                args: List[Expr] = []
                if self.peek().kind != ")":
                    args.append(self.parse_expr())
                    while self.match(","):
                        args.append(self.parse_expr())
                self.expect(")")
                self.expect(";")
                call = Call(line=name_token.line, func=name, args=tuple(args))
                return ExprStmt(line=name_token.line, expr=call)
            raise SourceError(
                f"unexpected token after {name!r}", name_token.line
            )
        raise SourceError(f"expected a statement, found {token.text!r}",
                          token.line)

    # -- items ----------------------------------------------------------------

    def _var_is_global(self) -> bool:
        """Lookahead: ``var IDENT = [-]INT ;`` makes a global declaration."""
        saved = self.index
        try:
            self.next()  # var
            if self.next().kind != "ident":
                return False
            if self.next().kind != "=":
                return False
            token = self.next()
            if token.kind == "-":
                token = self.next()
            if token.kind != "int":
                return False
            return self.peek().kind == ";"
        finally:
            self.index = saved

    def parse_program(self) -> SourceProgram:
        globals_: List[GlobalVar] = []
        arrays: List[ArrayDecl] = []
        functions: List[Function] = []
        main: List[Stmt] = []
        while self.peek().kind != "eof":
            token = self.peek()
            if token.kind == "var" and not main and self._var_is_global():
                # Top-level var with a literal initializer, before any main
                # statement: a global.  Other top-level vars start main.
                line = self.next().line
                name = self.expect("ident").text
                self.expect("=")
                sign = -1 if self.match("-") else 1
                value = sign * int(self.expect("int").text)
                self.expect(";")
                globals_.append(GlobalVar(name, value, line))
            elif token.kind == "array":
                line = self.next().line
                name = self.expect("ident").text
                self.expect("[")
                size = int(self.expect("int").text)
                self.expect("]")
                init: Tuple[int, ...] = ()
                if self.match("="):
                    self.expect("{")
                    values = [int(self.expect("int").text)]
                    while self.match(","):
                        values.append(int(self.expect("int").text))
                    self.expect("}")
                    init = tuple(values)
                self.expect(";")
                arrays.append(ArrayDecl(name, size, init, line))
            elif token.kind == "fn":
                line = self.next().line
                name = self.expect("ident").text
                self.expect("(")
                params: List[str] = []
                if self.peek().kind != ")":
                    params.append(self.expect("ident").text)
                    while self.match(","):
                        params.append(self.expect("ident").text)
                self.expect(")")
                body = self.parse_block()
                functions.append(Function(name, tuple(params), body, line))
            else:
                main.append(self.parse_stmt())
        return SourceProgram(
            globals=tuple(globals_),
            arrays=tuple(arrays),
            functions=tuple(functions),
            main=tuple(main),
        )


def parse_source(source: str) -> SourceProgram:
    """Parse MWL source text into a :class:`SourceProgram`."""
    return _Parser(source).parse_program()
