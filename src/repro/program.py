"""The :class:`Program` bundle: everything needed to check and run TAL_FT code.

A program couples code memory with its typing interface (label code types,
data heap typing, per-instruction hints) and its initial data memory.  Both
the assembler (:mod:`repro.asm`) and the compiler (:mod:`repro.compiler`)
produce :class:`Program` values; the type checker, the machine, the
metatheory checkers and the fault-injection campaigns all consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.colors import Color
from repro.core.instructions import Instruction
from repro.core.state import MachineState, RegisterFile, StoreQueue
from repro.types.code import CheckedProgram, check_program
from repro.types.instructions import InstructionHint
from repro.types.syntax import BasicType, CodeType


@dataclass
class Program:
    """An assembled (or compiled) TAL_FT program.

    ``label_types`` may be empty for *unprotected baseline* programs, which
    execute and can be timed but are rejected by :meth:`check`.
    """

    #: Code memory: address -> instruction (addresses start at 1).
    code: Dict[int, Instruction]
    #: Declared code types at block entries.
    label_types: Dict[int, CodeType] = field(default_factory=dict)
    #: Heap typing of the data segment (address -> basic type).
    data_psi: Dict[int, BasicType] = field(default_factory=dict)
    #: Typing hints per code address (jump substitutions, mov overrides).
    hints: Dict[int, InstructionHint] = field(default_factory=dict)
    #: Entry address.
    entry: int = 1
    #: Initial contents of value memory.
    initial_memory: Dict[int, int] = field(default_factory=dict)
    #: Number of general-purpose registers the machine is built with.
    num_gprs: int = 64
    #: Label name -> address (provenance for assembler/compiler output).
    labels_by_name: Dict[str, int] = field(default_factory=dict)
    #: Boot color per general-purpose register (default: green).  The FT
    #: compiler boots its blue register pool blue so the entry precondition
    #: types it blue.
    gpr_colors: Dict[str, "Color"] = field(default_factory=dict)
    #: First device-mapped (observable) memory address; stores below it
    #: (compiler spill slots) update memory silently.  0 = everything
    #: observable.
    observable_min: int = 0

    def boot(self) -> MachineState:
        """A fresh machine state at the entry point.

        General-purpose registers start as zeroes colored per
        ``gpr_colors`` (green by default), matching the conventional entry
        precondition (see :func:`repro.types.syntax.make_entry_gamma`).
        """
        return MachineState(
            regs=RegisterFile.initial(
                self.entry, num_gprs=self.num_gprs,
                gpr_colors=self.gpr_colors,
            ),
            code=dict(self.code),
            memory=dict(self.initial_memory),
            queue=StoreQueue(),
            observable_min=self.observable_min,
        )

    def check(self, jobs: "int | None" = None) -> CheckedProgram:
        """Type-check the program (``Psi |- C``).

        ``jobs=None`` (or ``1``) checks serially; ``jobs=N`` checks the
        basic blocks across ``N`` worker processes (``0`` = one per CPU)
        with identical results and diagnostics (see
        :mod:`repro.types.parallel`).

        Raises :class:`repro.types.TypeCheckError` on failure.
        """
        return check_program(
            self.code, self.label_types, self.data_psi, self.hints,
            jobs=jobs,
        )

    def address_of(self, label: str) -> int:
        try:
            return self.labels_by_name[label]
        except KeyError:
            raise KeyError(f"no label named {label!r}") from None

    @property
    def size(self) -> int:
        """Static instruction count."""
        return len(self.code)

    def __repr__(self) -> str:
        return (
            f"<Program {self.size} instrs, {len(self.label_types)} labels, "
            f"{len(self.initial_memory)} data words>"
        )
