"""Setup shim.

The primary metadata lives in pyproject.toml; this file exists so that the
package installs in fully offline environments where the ``wheel`` package
(needed by PEP 660 editable installs) is unavailable:

    python setup.py develop   # or: pip install -e . --no-build-isolation
"""

from setuptools import setup

setup()
