"""No False Positives (Corollary 3) across the full workload suite.

"The hardware never claims to have detected a fault when no fault has
occurred during execution of a well-typed program."

Every kernel's fault-tolerant build is executed fault-free under the
theorem-checking runner (:class:`repro.verify.TypedExecution`), which
re-derives the machine-state typing judgment ``|- S`` before *every* small
step -- so this bench simultaneously exercises Progress, Preservation and
No-False-Positives on hundreds of thousands of dynamic steps.
"""

from __future__ import annotations

from typing import List

from repro.core import Status
from repro.verify import check_no_false_positives
from repro.workloads import ALL_KERNELS, compile_kernel

from _bench_utils import emit_json, emit_table, format_row

#: The typed runner re-derives |- S, which is expensive; for a subset of
#: kernels run it with a stride, and run the rest with plain execution
#: (the fault state is still monitored everywhere).
VERIFIED_KERNELS = ("vpr", "jpeg", "epic")
CHECK_STRIDE = 50


def run_table() -> List[str]:
    widths = (10, 10, 12, 14)
    lines = [
        format_row(("kernel", "steps", "|-S checks", "fault claimed?"),
                   widths),
        "-" * 52,
    ]
    per_kernel = {}
    for name in ALL_KERNELS:
        if name in VERIFIED_KERNELS:
            run = check_no_false_positives(
                compile_kernel(name, "ft").program, max_steps=500_000,
                check_stride=CHECK_STRIDE,
            )
            steps, checks = run.steps, run.checks
            claimed = run.status is Status.FAULT_DETECTED
        else:
            from repro.core import Outcome, run_to_completion

            trace = run_to_completion(
                compile_kernel(name, "ft").program.boot(),
                max_steps=5_000_000,
            )
            steps, checks = trace.steps, 0
            claimed = trace.outcome is Outcome.FAULT_DETECTED
        if claimed:
            raise AssertionError(f"false positive in {name}")
        per_kernel[name] = {"steps": steps, "typing_checks": checks,
                            "false_positive": False}
        lines.append(format_row(
            (name, steps, checks if checks else "-", "no"), widths
        ))
    lines.append("-" * 52)
    lines.append("Corollary 3 holds on every kernel (0 false positives).")
    emit_json("no_false_positives", {
        "config": {"verified_kernels": list(VERIFIED_KERNELS),
                   "check_stride": CHECK_STRIDE},
        "kernels": per_kernel,
    })
    return lines


def test_no_false_positives(benchmark):
    lines = benchmark.pedantic(run_table, rounds=1, iterations=1)
    emit_table("no_false_positives", lines)
