"""Resilience overhead: what crash safety costs on the campaign hot path.

PR 4 layered a durable result journal (group-committed JSONL with
per-line checksums and delta-encoded output tails) and a supervised
process pool (deadlines, retries, serial fallback) under
``run_campaign``.  Crash safety is only free to *enable by default* if
the fault-free path barely pays for it, so this bench times the same
sampled ``vpr`` campaign as ``bench_campaign_throughput`` -- identical
config, identical compiled backend -- in four configurations:

* plain compiled serial (the PR-3 baseline number),
* journaling on (``journal_path=``, fresh journal each run),
* resuming from a complete journal (the replay fast path),
* supervised pool, ``jobs=2`` (informational on this single-CPU
  container; the supervisor's bookkeeping rides on pool dispatch that is
  already paid for).

The contract asserted here: **journaling costs <= 5%** of the plain
serial engine's throughput.  The delta-encoded tails are what make this
hold -- MASKED runs (the overwhelming majority) journal their output
tail as a one-byte sentinel instead of the full output list, and fsyncs
group-commit instead of hitting the disk per step.

All four reports must be bit-identical; a resilience layer that changed
a single record would be a correctness bug, not an overhead question.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import List

from repro.injection import CampaignConfig, run_campaign
from repro.injection.chaos import report_fingerprint
from repro.workloads import compile_kernel

from _bench_utils import emit_json, emit_table, format_row

#: Mirrors bench_campaign_throughput so the baseline row is the PR-3
#: compiled-backend number.
_CONFIG = CampaignConfig(
    max_injection_steps=30,
    max_values_per_site=2,
    max_sites_per_step=8,
    seed=20260705,
)

_MAX_JOURNAL_OVERHEAD = 0.05


def _timed(runner, reps: int = 1):
    runner()  # warm up
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        report = runner()
        best = min(best, time.perf_counter() - start)
    return report, best


def _paired_overhead(baseline_runner, treated_runner, reps: int):
    """Minimum of per-pair time ratios, measured back-to-back.

    This single-CPU container drifts between fast and throttled regimes
    by ~1.7x over seconds, so best-of times taken in different windows
    are incomparable.  Running baseline and treatment adjacently makes
    each pair regime-matched; if the treatment carried an inherent cost
    above the budget, *every* pair would show it, so the minimum ratio
    isolates the inherent overhead from the drift.
    """
    baseline_runner(), treated_runner()  # warm up
    best_ratio = float("inf")
    baseline_best = treated_best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        baseline_report = baseline_runner()
        baseline_time = time.perf_counter() - start
        start = time.perf_counter()
        treated_report = treated_runner()
        treated_time = time.perf_counter() - start
        best_ratio = min(best_ratio, treated_time / baseline_time)
        baseline_best = min(baseline_best, baseline_time)
        treated_best = min(treated_best, treated_time)
    return (baseline_report, baseline_best, treated_report, treated_best,
            best_ratio)


def run_resilience_table() -> List[str]:
    program = compile_kernel("vpr", "ft").program
    with tempfile.TemporaryDirectory() as workdir:
        journal_path = os.path.join(workdir, "bench.journal")
        resume_path = os.path.join(workdir, "resume.journal")

        # The resume row replays a *complete* journal: write it once.
        run_campaign(program, _CONFIG, jobs=1, journal_path=resume_path)

        (plain_report, plain_time, journal_report, journal_time,
         journal_ratio) = _paired_overhead(
            lambda: run_campaign(program, _CONFIG, jobs=1),
            lambda: run_campaign(program, _CONFIG, jobs=1,
                                 journal_path=journal_path),
            reps=7)
        resume_report, resume_time = _timed(
            lambda: run_campaign(program, _CONFIG, jobs=1,
                                 journal_path=resume_path, resume=True),
            reps=3)
        pool_report, pool_time = _timed(
            lambda: run_campaign(program, _CONFIG, jobs=2), reps=2)
        journal_size = os.path.getsize(journal_path)

    # Bit-identical first: overhead numbers are meaningless otherwise.
    baseline = report_fingerprint(plain_report)
    for label, report in (("journaled", journal_report),
                          ("resumed", resume_report),
                          ("supervised pool", pool_report)):
        if report_fingerprint(report) != baseline:
            raise AssertionError(
                f"{label} campaign diverged from the plain serial report")
    if resume_report.resilience.journaled_steps != 0:
        raise AssertionError("resume row recomputed steps it had on disk")

    plain_rate = plain_report.injections / plain_time
    journal_rate = journal_report.injections / journal_time
    resume_rate = resume_report.injections / resume_time
    pool_rate = pool_report.injections / pool_time
    overhead = journal_ratio - 1.0

    widths = (26, 12, 10, 12, 10)
    lines = [
        format_row(("configuration", "injections", "time_s", "inj_per_s",
                    "vs_plain"), widths),
        "-" * 76,
        format_row(("compiled serial", plain_report.injections,
                    plain_time, plain_rate, 1.0), widths),
        format_row(("+ journal (fresh)", journal_report.injections,
                    journal_time, journal_rate,
                    journal_rate / plain_rate), widths),
        format_row(("+ journal (resume)", resume_report.injections,
                    resume_time, resume_rate,
                    resume_rate / plain_rate), widths),
        format_row(("supervised jobs=2", pool_report.injections,
                    pool_time, pool_rate, pool_rate / plain_rate), widths),
        "-" * 76,
        f"journal: {journal_size} bytes for "
        f"{journal_report.injections} outcomes "
        f"(delta-encoded tails, group-committed fsync)",
        f"contract: journaling overhead <= "
        f"{_MAX_JOURNAL_OVERHEAD:.0%} (got {overhead:+.1%}, best paired "
        "ratio); all reports bit-identical",
    ]
    if overhead > _MAX_JOURNAL_OVERHEAD:
        raise AssertionError(
            f"journaling overhead {overhead:.1%} exceeds the "
            f"{_MAX_JOURNAL_OVERHEAD:.0%} budget "
            f"({plain_time * 1000:.1f}ms plain vs "
            f"{journal_time * 1000:.1f}ms journaled, best-of times)")
    emit_json("resilience", {
        "config": {
            "kernel": "vpr", "mode": "ft",
            "max_injection_steps": _CONFIG.max_injection_steps,
            "max_sites_per_step": _CONFIG.max_sites_per_step,
            "max_values_per_site": _CONFIG.max_values_per_site,
            "seed": _CONFIG.seed,
        },
        "injections": plain_report.injections,
        "journal_bytes": journal_size,
        "throughput_inj_per_s": {
            "compiled_serial": plain_rate,
            "journaled": journal_rate,
            "resume_replay": resume_rate,
            "supervised_jobs2": pool_rate,
        },
        "journal_overhead_fraction": overhead,
        "journal_overhead_budget": _MAX_JOURNAL_OVERHEAD,
        "bit_identical": True,
    })
    return lines


def test_resilience_overhead(benchmark):
    lines = benchmark.pedantic(run_resilience_table, rounds=1, iterations=1)
    emit_table("resilience", lines)
