"""Recovery overhead versus checkpoint interval (extension experiment).

The paper stops at detection ("recovery is largely orthogonal").  Our
checkpoint/rollback/replay extension (``repro.recovery``) completes the
story; this bench quantifies its cost curve on a compiled kernel:

* **checkpoint count** -- how many state snapshots a run takes (space /
  checkpoint-bandwidth cost, paid even without faults), versus
* **replayed work** -- the steps re-executed after a detected fault
  (time cost, paid per fault), averaged over sampled single-fault runs.

Small intervals checkpoint constantly but replay little; large intervals
are nearly free fault-free but lose more work per fault -- the classic
trade-off, now sitting on top of provable detection (every sampled run
must end with *exactly* the fault-free output).
"""

from __future__ import annotations

from typing import List

from repro.core import Outcome, RegZap, run_to_completion
from repro.recovery import RecoveringMachine
from repro.workloads import compile_kernel

from _bench_utils import emit_json, emit_table, format_row

KERNEL = "vpr"
INTERVALS = (8, 32, 128, 512)
FAULT_SAMPLES = 25


def run_table() -> List[str]:
    program = compile_kernel(KERNEL, "ft").program
    reference = run_to_completion(program.boot(), max_steps=2_000_000)
    assert reference.outcome is Outcome.HALTED

    widths = (10, 13, 12, 14, 12)
    lines = [
        f"kernel: {KERNEL}, {reference.steps} fault-free steps, "
        f"{FAULT_SAMPLES} sampled faults per interval",
        format_row(("interval", "checkpoints", "recoveries",
                    "avg replayed", "overhead %"), widths),
        "-" * 68,
    ]
    # At each sampled step, probe for a register whose corruption the
    # hardware actually detects (most strikes hit dead values and are
    # masked -- recovery cost is only meaningful for detected faults).
    from repro.core import Machine

    stride = max(1, reference.steps // FAULT_SAMPLES)
    detectable = []
    for at_step in range(1, reference.steps, stride):
        for index in range(1, program.num_gprs + 1):
            fault = RegZap(f"r{index}", 987654)
            probe = Machine(program.boot()).run(
                max_steps=4_000_000, fault=fault, fault_at_step=at_step
            )
            if probe.outcome is Outcome.FAULT_DETECTED:
                detectable.append((at_step, fault))
                break
    if not detectable:
        raise AssertionError("no detectable faults found to recover from")

    per_interval = {}
    for interval in INTERVALS:
        total_replayed = 0
        total_recoveries = 0
        checkpoints = 0
        for at_step, fault in detectable:
            machine = RecoveringMachine(program,
                                        checkpoint_interval=interval)
            trace = machine.run(
                fault=fault, fault_at_step=at_step, max_steps=4_000_000,
            )
            if trace.outcome is not Outcome.HALTED or \
                    trace.outputs != reference.outputs:
                raise AssertionError(
                    f"recovery failed at step {at_step}, interval {interval}"
                )
            total_replayed += trace.replayed_steps
            total_recoveries += trace.recoveries
            checkpoints = max(checkpoints, trace.checkpoints)
        avg_replayed = total_replayed / len(detectable)
        per_interval[str(interval)] = {
            "checkpoints": checkpoints,
            "recoveries": total_recoveries,
            "avg_replayed_steps": avg_replayed,
            "overhead_pct": 100.0 * avg_replayed / reference.steps,
        }
        lines.append(format_row(
            (interval, checkpoints, total_recoveries,
             round(avg_replayed, 1),
             100.0 * avg_replayed / reference.steps), widths,
        ))
    lines.append("-" * 68)
    lines.append("every sampled run reproduced the exact fault-free output")
    lines.append("")
    lines.append("note the non-monotone curve: with a fixed 8-deep ring, tiny")
    lines.append("intervals retain < detection-latency of history, forcing")
    lines.append("rollbacks to the boot checkpoint -- ring_depth * interval")
    lines.append("must exceed the detection latency for cheap recovery.")
    emit_json("recovery", {
        "config": {"kernel": KERNEL, "fault_samples": FAULT_SAMPLES,
                   "reference_steps": reference.steps},
        "intervals": per_interval,
    })
    return lines


def test_recovery_overhead(benchmark):
    lines = benchmark.pedantic(run_table, rounds=1, iterations=1)
    emit_table("recovery", lines)
