"""Ablation: Figure 10's shape versus machine issue width.

The paper attributes the modest 1.34x overhead to the Itanium 2's ample
issue bandwidth absorbing the duplicated instruction stream.  This
ablation sweeps the issue width (scaling the memory ports with it) and
reports the geometric-mean overhead: narrow machines pay nearly the full
2x of duplication, wide machines approach the data-dependence floor --
the crossover behind the paper's headline number.
"""

from __future__ import annotations

from typing import List

from repro.simulator import MachineConfig, record_block_path, simulate
from repro.workloads import compile_kernel

from _bench_utils import emit_json, emit_table, format_row, geomean

#: A representative subset (full Figure 10 uses every kernel).
KERNELS = ("vpr", "gcc", "jpeg", "epic", "twolf", "mpeg2")

WIDTHS = (1, 2, 4, 6, 8)


def config_for(width: int) -> MachineConfig:
    return MachineConfig(
        issue_width=width,
        load_ports=max(1, width // 3),
        store_ports=max(1, width // 3),
        branch_ports=1,
    )


def run_table() -> List[str]:
    widths = (8,) + tuple(10 for _ in WIDTHS)
    lines = [
        format_row(("kernel",) + tuple(f"W={w}" for w in WIDTHS), widths),
        "-" * (10 + 12 * len(WIDTHS)),
    ]
    per_width = {w: [] for w in WIDTHS}
    for name in KERNELS:
        baseline = compile_kernel(name, "baseline")
        protected = compile_kernel(name, "ft")
        base_path = record_block_path(baseline)
        ft_path = record_block_path(protected)
        row = [name]
        for width in WIDTHS:
            config = config_for(width)
            ratio = (
                simulate(protected, config, path=ft_path).cycles
                / simulate(baseline, config, path=base_path).cycles
            )
            per_width[width].append(ratio)
            row.append(ratio)
        lines.append(format_row(tuple(row), widths))
    lines.append("-" * (10 + 12 * len(WIDTHS)))
    means = [geomean(per_width[w]) for w in WIDTHS]
    lines.append(format_row(("geomean",) + tuple(means), widths))
    lines.append("")
    lines.append("narrow machines pay ~2x for duplication; width hides it")
    emit_json("ablation_width", {
        "kernels": list(KERNELS),
        "geomean_overhead_by_width": dict(zip(map(str, WIDTHS), means)),
    })
    return lines


def test_ablation_issue_width(benchmark):
    lines = benchmark.pedantic(run_table, rounds=1, iterations=1)
    emit_table("ablation_width", lines)
    # Shape: overhead decreases monotonically-ish with width and spans a
    # wide range from near-2x to well under 1.5x.
    import re

    means = [float(x) for x in re.findall(r"\d+\.\d+", lines[-3])]
    assert means[0] > 1.6  # W=1: close to full duplication cost
    assert means[-1] < 1.45  # W=8: mostly hidden
