"""Type-checker cost: throughput of ``Psi |- C`` on generated code.

Not a paper figure (the paper reports no checker timings), but the
compiler-debugging story of Section 1 only works if checking compiled
binaries is cheap; this bench records instructions checked per second for
every kernel.
"""

from __future__ import annotations

import time
from typing import List

from repro.workloads import ALL_KERNELS, compile_kernel

from _bench_utils import emit_table, format_row


def run_table() -> List[str]:
    widths = (10, 8, 12, 14)
    lines = [
        format_row(("kernel", "instrs", "check (ms)", "instrs/sec"), widths),
        "-" * 50,
    ]
    total_instructions = 0
    total_seconds = 0.0
    from repro.statics import clear_normalization_caches

    for name in ALL_KERNELS:
        program = compile_kernel(name, "ft").program
        clear_normalization_caches()  # cold-cache timing per kernel
        start = time.perf_counter()
        program.check()
        elapsed = time.perf_counter() - start
        total_instructions += program.size
        total_seconds += elapsed
        lines.append(format_row(
            (name, program.size, elapsed * 1e3,
             int(program.size / elapsed)), widths,
        ))
    lines.append("-" * 50)
    lines.append(format_row(
        ("total", total_instructions, total_seconds * 1e3,
         int(total_instructions / total_seconds)), widths,
    ))
    return lines


def test_typechecker_throughput(benchmark):
    # Time one representative check with proper statistics, then print the
    # whole-suite table.
    program = compile_kernel("gcc", "ft").program
    benchmark(program.check)
    emit_table("typechecker", run_table())
