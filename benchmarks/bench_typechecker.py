"""Type-checker cost: throughput of ``Psi |- C`` on generated code.

Not a paper figure (the paper reports no checker timings), but the
compiler-debugging story of Section 1 only works if checking compiled
binaries is cheap; this bench records instructions checked per second for
every kernel, plus a summary comparing cold vs warm memo caches and
serial vs parallel block checking (see docs/TYPECHECKER.md).
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.statics import clear_normalization_caches
from repro.workloads import ALL_KERNELS, compile_kernel

from _bench_utils import emit_json, emit_table, format_row

#: The seed-era serial cold-cache total, for the before/after comparison.
BASELINE_INSTRS_PER_SEC = 8_864

#: Repetitions per timing; the minimum is reported.  The caches are
#: cleared before every cold repetition, so min-of-N only filters
#: scheduler/frequency noise -- it never lets a warm run masquerade as
#: cold.
REPEATS = 3


def _check_once(program, jobs: Optional[int], cold: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        if cold:
            clear_normalization_caches()
        start = time.perf_counter()
        program.check(jobs=jobs)
        best = min(best, time.perf_counter() - start)
    return best


def _check_all(programs, jobs: Optional[int], cold: bool) -> float:
    """Total seconds to check every kernel under one cache regime."""
    return sum(_check_once(program, jobs, cold) for program in programs)


def run_table() -> List[str]:
    widths = (10, 8, 12, 14)
    lines = [
        format_row(("kernel", "instrs", "check (ms)", "instrs/sec"), widths),
        "-" * 50,
    ]
    programs = [compile_kernel(name, "ft").program for name in ALL_KERNELS]
    total_instructions = sum(program.size for program in programs)
    total_seconds = 0.0
    for name, program in zip(ALL_KERNELS, programs):
        elapsed = _check_once(program, None, cold=True)
        total_seconds += elapsed
        lines.append(format_row(
            (name, program.size, elapsed * 1e3,
             int(program.size / elapsed)), widths,
        ))
    lines.append("-" * 50)
    lines.append(format_row(
        ("total", total_instructions, total_seconds * 1e3,
         int(total_instructions / total_seconds)), widths,
    ))

    # Cache-regime / parallelism summary.  Warm rows reuse whatever the
    # previous row left in the memo tables; jobs=4 rows exercise the
    # process-pool block checker (identical results by construction --
    # the win depends on having >1 CPU, which this box may not).
    summary_widths = (26, 12, 14)
    lines.append("")
    lines.append(format_row(("configuration", "total (ms)", "instrs/sec"),
                            summary_widths))
    lines.append("-" * 56)
    regimes = {}
    for label, jobs, cold in (
        ("cold cache, jobs=1", None, True),
        ("warm cache, jobs=1", None, False),
        ("cold cache, jobs=4", 4, True),
        ("warm cache, jobs=4", 4, False),
    ):
        seconds = _check_all(programs, jobs, cold)
        regimes[label] = int(total_instructions / seconds)
        lines.append(format_row(
            (label, seconds * 1e3, int(total_instructions / seconds)),
            summary_widths,
        ))
    lines.append("-" * 56)
    lines.append(format_row(
        ("seed baseline (cold, serial)", "", BASELINE_INSTRS_PER_SEC),
        summary_widths,
    ))
    emit_json("typechecker", {
        "total_instructions": total_instructions,
        "throughput_instrs_per_sec": regimes,
        "seed_baseline_instrs_per_sec": BASELINE_INSTRS_PER_SEC,
        "speedup_cold_serial_vs_seed":
            regimes["cold cache, jobs=1"] / BASELINE_INSTRS_PER_SEC,
    })
    return lines


def test_typechecker_throughput(benchmark):
    # Time one representative check with proper statistics, then print the
    # whole-suite table.
    program = compile_kernel("gcc", "ft").program
    benchmark(program.check)
    emit_table("typechecker", run_table())
