"""Detection latency: how long a fault lives before the hardware sees it.

TAL_FT detects faults at the *next dangerous action* -- a blue store's
compare, a two-phase control transfer, or a program-counter fetch check.
The latency between a strike and its detection therefore tracks the
distance to the next store pair or branch, not any fixed pipeline depth.

This distribution matters in practice: it bounds how much work a recovery
scheme must be able to roll back (see ``bench_recovery.py`` -- the
checkpoint ring must retain more history than the latency tail), and it
is an experiment the paper's formal treatment makes well-posed but does
not run.
"""

from __future__ import annotations

from typing import List

from repro.injection import CampaignConfig, FaultResult, run_campaign
from repro.workloads import compile_kernel

from _bench_utils import emit_json, emit_table, format_row

KERNELS = ("vpr", "jpeg", "gcc")

_CONFIG = CampaignConfig(
    max_injection_steps=40,
    max_values_per_site=2,
    max_sites_per_step=10,
    seed=77,
    keep_records=True,
)

_BUCKETS = ((0, 4), (5, 16), (17, 64), (65, 256), (257, 10**9))


def run_table() -> List[str]:
    widths = (10, 10, 8, 8, 8, 8, 8, 9)
    header = ("kernel", "detected") + tuple(
        f"{lo}-{hi if hi < 10**9 else 'inf'}" for lo, hi in _BUCKETS
    ) + ("median",)
    lines = [
        "steps from injection to hardware detection (detected runs only)",
        format_row(header, widths),
        "-" * 76,
    ]
    per_kernel = {}
    for name in KERNELS:
        report = run_campaign(compile_kernel(name, "ft").program, _CONFIG)
        latencies = sorted(
            record.latency for record in report.records
            if record.result is FaultResult.DETECTED and record.latency >= 0
        )
        if not latencies:
            continue
        buckets = []
        for lo, hi in _BUCKETS:
            buckets.append(sum(1 for value in latencies if lo <= value <= hi))
        median = latencies[len(latencies) // 2]
        per_kernel[name] = {
            "detected": len(latencies),
            "median_latency_steps": median,
            "buckets": {f"{lo}-{hi}": count
                        for (lo, hi), count in zip(_BUCKETS, buckets)},
        }
        lines.append(format_row(
            (name, len(latencies)) + tuple(buckets) + (median,), widths
        ))
    lines.append("-" * 76)
    lines.append("latency tracks distance to the next checked action; the")
    lines.append("tail bounds how much history recovery must retain.")
    emit_json("detection_latency", {
        "config": {"max_injection_steps": _CONFIG.max_injection_steps,
                   "max_sites_per_step": _CONFIG.max_sites_per_step,
                   "max_values_per_site": _CONFIG.max_values_per_site,
                   "seed": _CONFIG.seed},
        "kernels": per_kernel,
    })
    return lines


def test_detection_latency(benchmark):
    lines = benchmark.pedantic(run_table, rounds=1, iterations=1)
    emit_table("detection_latency", lines)
