"""Sharded campaign scaling: the worker fleet vs the single process.

This PR turned ``run_campaign`` into a horizontally sharded system
(:mod:`repro.injection.shard` + :mod:`repro.service`): the injection-step
space is planned into journal-backed shards, executed by a socket worker
fleet with work stealing and dead-worker reissue, and merged back into
the exact single-process report.  Sharding is only worth its coordination
machinery if the fleet actually multiplies throughput, so this bench runs
the same exhaustive ``vpr`` SEU sweep as ``bench_campaign_throughput``
(every site, every representative value -- the regime campaigns run at
scale) on:

* the single-process engine (the merge-parity baseline),
* a sharded local fleet of 1, 2 and 4 workers (``shards=4`` throughout,
  so stealing keeps the fleet busy regardless of worker count).

Every row must be fingerprint-equal to the single-process report --
scaling numbers are meaningless if the distribution changed a bit.

The contract: **4 local workers deliver >= 3x the 1-worker fleet's
throughput** on this sweep.  The assertion is gated on
``os.cpu_count() >= 4``: the fleet multiplies real cores, and this
repo's development container exposes a single CPU, where 4 forked
workers time-slice one core and the matrix is informational (CI's
4-vCPU runners assert it).
"""

from __future__ import annotations

import os
import time
from typing import List

from repro.injection import CampaignConfig, run_campaign
from repro.injection.chaos import report_fingerprint
from repro.service import run_campaign_sharded
from repro.workloads import compile_kernel

from _bench_utils import emit_json, emit_table, format_row

#: Mirrors bench_campaign_throughput's exhaustive sweep: every fault
#: site, every representative value at 10 sampled steps.  ``prune=False``
#: keeps every row measuring raw fleet execution, not the pruner.
_SWEEP_CONFIG = CampaignConfig(
    max_injection_steps=10,
    max_values_per_site=None,
    max_sites_per_step=None,
    seed=20260705,
    prune=False,
)

_SHARDS = 4
_FLEET_SIZES = (1, 2, 4)
_MIN_SPEEDUP_4_WORKERS = 3.0


def _timed(runner):
    start = time.perf_counter()
    report = runner()
    return report, time.perf_counter() - start


def run_sharding_table() -> List[str]:
    program = compile_kernel("vpr", "ft").program
    # Warm the compile/exec caches so the first timed row isn't charged
    # for one-time work the others inherit.
    single_report, single_time = _timed(
        lambda: run_campaign(program, _SWEEP_CONFIG, jobs=1))
    baseline = report_fingerprint(single_report)

    rows = []
    for fleet in _FLEET_SIZES:
        report, seconds = _timed(
            lambda fleet=fleet: run_campaign_sharded(
                program, _SWEEP_CONFIG, shards=_SHARDS,
                local_workers=fleet))
        if report_fingerprint(report) != baseline:
            raise AssertionError(
                f"sharded fleet of {fleet} diverged from the "
                "single-process report")
        if report.latency_buckets != single_report.latency_buckets:
            raise AssertionError(
                f"sharded fleet of {fleet} changed latency_buckets")
        rows.append((fleet, report, seconds))

    single_rate = single_report.injections / single_time
    rates = {fleet: report.injections / seconds
             for fleet, report, seconds in rows}
    speedup_vs_one = rates[4] / rates[1]
    cores = os.cpu_count() or 1
    contract_asserted = cores >= 4

    widths = (24, 12, 10, 12, 12)
    lines = [
        format_row(("configuration", "injections", "time_s", "inj_per_s",
                    "vs_single"), widths),
        "-" * 76,
        format_row(("single process", single_report.injections,
                    single_time, single_rate, 1.0), widths),
    ]
    for fleet, report, seconds in rows:
        lines.append(format_row(
            (f"shards=4, workers={fleet}", report.injections, seconds,
             rates[fleet], rates[fleet] / single_rate), widths))
    lines.append("-" * 76)
    lines.append(
        f"4-worker fleet vs 1-worker fleet: {speedup_vs_one:.2f}x "
        f"(contract >= {_MIN_SPEEDUP_4_WORKERS:.0f}x "
        + (f"asserted on this {cores}-core host)" if contract_asserted
           else f"informational: host exposes {cores} core(s))"))
    lines.append("all reports bit-identical to the single process, "
                 "latency_buckets included")
    if contract_asserted and speedup_vs_one < _MIN_SPEEDUP_4_WORKERS:
        raise AssertionError(
            f"4 local workers delivered {speedup_vs_one:.2f}x the "
            f"1-worker fleet on a {cores}-core host; the sharding "
            f"contract requires >= {_MIN_SPEEDUP_4_WORKERS:.0f}x")

    emit_json("sharding", {
        "config": {
            "kernel": "vpr", "mode": "ft",
            "max_injection_steps": _SWEEP_CONFIG.max_injection_steps,
            "max_sites_per_step": None,
            "max_values_per_site": None,
            "seed": _SWEEP_CONFIG.seed,
            "prune": False,
            "shards": _SHARDS,
        },
        "injections": single_report.injections,
        "throughput_inj_per_s": {
            "single_process": single_rate,
            **{f"fleet_{fleet}_workers": rates[fleet]
               for fleet in _FLEET_SIZES},
        },
        "speedup_4_workers_vs_1": speedup_vs_one,
        "speedup_contract": _MIN_SPEEDUP_4_WORKERS,
        "contract_asserted": contract_asserted,
        "contract_gate_reason": (
            "asserted: host has >= 4 cores" if contract_asserted
            else f"informational: host exposes {cores} core(s); "
                 "4 forked workers time-slice one core"),
        "bit_identical": True,
    })
    return lines


def test_sharding_scaling(benchmark):
    lines = benchmark.pedantic(run_sharding_table, rounds=1, iterations=1)
    emit_table("sharding", lines)
