"""Characterization: what program shape drives the Figure 10 overhead?

Figure 10's per-benchmark spread (≈1.2x to ≈1.4x) is anecdotal -- each
SPEC/MediaBench program mixes many effects.  This bench isolates them with
the synthetic workload generator: overhead as a function of

* **ILP** (independent accumulator chains): serial code leaves the 6-wide
  machine idle, so the duplicated stream is nearly free; parallel code
  saturates it and pays toward the full 2x;
* **memory intensity** (loads per chain): loads are duplicated through the
  same two load ports;
* **branchiness** (if/else diamonds per iteration): every branch adds a
  two-phase announce/commit through the destination register.

The monotone overhead-vs-ILP curve is the mechanism behind the paper's
"only 34%" headline: SPEC-class integer code lives on the left of it.
"""

from __future__ import annotations

from typing import List

from repro.simulator import simulate
from repro.workloads import WorkloadSpec, generate_compiled

from _bench_utils import emit_json, emit_table, format_row

CHAINS = (1, 2, 4, 8)
LOADS = (0, 1, 2)
BRANCHES = (0, 2, 4)
ITERATIONS = 24


def _ratio(spec: WorkloadSpec) -> float:
    protected = generate_compiled(spec, "ft")
    baseline = generate_compiled(spec, "baseline")
    return simulate(protected).cycles / simulate(baseline).cycles


def run_table() -> List[str]:
    widths = (22,) + tuple(9 for _ in CHAINS)
    lines = [
        f"overhead (TAL-FT / baseline cycles), {ITERATIONS} iterations",
        format_row(("knob \\ chains (ILP)",) + tuple(map(str, CHAINS)),
                   widths),
        "-" * 62,
    ]
    rows = []
    for loads in LOADS:
        row = [f"loads/chain = {loads}"]
        for chains in CHAINS:
            row.append(_ratio(WorkloadSpec(
                chains=chains, loads_per_chain=loads, branches=0,
                iterations=ITERATIONS, seed=7,
            )))
        rows.append(row)
        lines.append(format_row(tuple(row), widths))
    lines.append("")
    for branches in BRANCHES[1:]:
        row = [f"branches = {branches}"]
        for chains in CHAINS:
            row.append(_ratio(WorkloadSpec(
                chains=chains, loads_per_chain=1, branches=branches,
                iterations=ITERATIONS, seed=7,
            )))
        rows.append(row)
        lines.append(format_row(tuple(row), widths))
    lines.append("-" * 62)
    lines.append("overhead grows with baseline ILP and memory intensity:")
    lines.append("duplication is cheap exactly when the machine was idle.")

    # Shape assertions: the pure-ALU row is monotone-ish in ILP and spans
    # from well under the paper's average to well above it.
    alu_row = rows[0][1:]
    if not (alu_row[0] < 1.40 and alu_row[-1] > alu_row[0]):
        raise AssertionError(f"unexpected characterization shape: {alu_row}")
    emit_json("characterization", {
        "config": {"chains": list(CHAINS), "iterations": ITERATIONS},
        "overhead_by_row": {
            row[0]: dict(zip(map(str, CHAINS), row[1:])) for row in rows
        },
    })
    return lines


def test_characterization(benchmark):
    lines = benchmark.pedantic(run_table, rounds=1, iterations=1)
    emit_table("characterization", lines)
