"""Fuzzer throughput: programs fully verified per CPU second, by profile.

The differential oracle is the most expensive per-program check in the
repo -- each program is interpreted, compiled twice, type-checked, run on
both machine backends, pushed through the theorem checkers, and swept by
a campaign matrix (every available execution backend x prune mode, on
both builds).  This bench measures how many programs per CPU second the
whole pipeline sustains for each generator profile, plus the mixed
MWL/TAL blend the default `talft fuzz` run uses, so a throughput
regression in any stage of the stack (front end, compiler, checker,
campaign engine) shows up as a drop in one number.

Contract asserted here:

* every generated program in every profile passes the oracle (a failing
  program is a bug, not a slow program), and
* the mixed blend sustains at least 1 program fully verified per CPU
  second -- an order of magnitude below observed rates, so only a real
  regression trips it.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.fuzz import OracleConfig, check_program, generate_program
from repro.fuzz.generator import PROFILES

from _bench_utils import emit_json, emit_table, format_row

#: Programs per measured row; small enough to keep the bench suite quick,
#: large enough to average over generator variance.
PROGRAMS_PER_ROW = 20
SEED = 20260808
_WIDTHS = (14, 10, 10, 12, 12)


def _measure(profile: str, kind: str) -> Dict[str, object]:
    config = OracleConfig()
    injections = 0
    failures: List[str] = []
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    for index in range(PROGRAMS_PER_ROW):
        program = generate_program(
            SEED, index,
            profile=None if profile == "mixed-run" else profile,
            kind=None if kind == "mix" else kind)
        verdict = check_program(program, config)
        injections += verdict.injections
        if not verdict.ok:
            failures.append(f"{program.name}: {verdict.stage}")
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - wall_start
    return {
        "profile": profile,
        "kind": kind,
        "programs": PROGRAMS_PER_ROW,
        "cpu_seconds": round(cpu, 3),
        "wall_seconds": round(wall, 3),
        "programs_per_cpu_second": round(PROGRAMS_PER_ROW / cpu, 2)
        if cpu > 0 else float("inf"),
        "injections": injections,
        "failures": failures,
    }


def test_fuzz_throughput():
    rows = [_measure(profile, "mwl") for profile in sorted(PROFILES)]
    rows.append(_measure("mixed-run", "mix"))
    rows.append(_measure("mixed-run", "tal"))

    lines = [
        format_row(("profile", "kind", "programs", "cpu_s",
                    "prog/cpu_s"), _WIDTHS),
    ]
    for row in rows:
        lines.append(format_row(
            (row["profile"], row["kind"], row["programs"],
             row["cpu_seconds"], row["programs_per_cpu_second"]), _WIDTHS))
    emit_table("fuzz", lines)
    emit_json("fuzz", {
        "config": {"programs_per_row": PROGRAMS_PER_ROW, "seed": SEED},
        "rows": rows,
    })

    for row in rows:
        assert not row["failures"], row
    mixed = next(row for row in rows if row["kind"] == "mix")
    assert mixed["programs_per_cpu_second"] >= 1.0, mixed
