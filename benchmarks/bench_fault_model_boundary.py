"""The fault-model boundary: coverage as the SEU assumption is relaxed.

The paper (Section 2.1) adopts the standard Single Event Upset model, and
all four theorems are stated for at most one fault.  This experiment shows
the assumption is *load-bearing*: under randomly sampled k-fault
schedules, coverage is perfect at k = 1 (Theorem 4) and degrades for
k >= 2 -- and a deliberately *correlated* pair (the same corrupt value
struck into the green and blue copies of one value) defeats detection
deterministically.

This is an experiment the paper implies but does not run; it quantifies
why "one fault per execution" is the right contract for the mechanism.
"""

from __future__ import annotations

from typing import List

from repro.injection import (
    CampaignConfig,
    correlated_double_fault,
    run_faults,
    run_multifault_campaign,
)
from repro.workloads import compile_kernel

from _bench_utils import emit_json, emit_table, format_row

KERNEL = "vpr"
FAULT_COUNTS = (1, 2, 3)
SAMPLES = 400


def run_table() -> List[str]:
    program = compile_kernel(KERNEL, "ft").program
    widths = (10, 12, 10, 10, 10, 10)
    lines = [
        f"kernel: {KERNEL} (well-typed TAL-FT build), "
        f"{SAMPLES} random schedules per point",
        format_row(("faults", "injections", "masked", "detected", "silent",
                    "coverage"), widths),
        "-" * 66,
    ]
    coverages = []
    by_count = {}
    for count in FAULT_COUNTS:
        report = run_multifault_campaign(
            program, num_faults=count, samples=SAMPLES, seed=1000 + count
        )
        coverages.append(report.coverage)
        by_count[str(count)] = {
            "injections": report.injections, "masked": report.masked,
            "detected": report.detected, "silent": report.silent,
            "coverage": report.coverage,
        }
        lines.append(format_row(
            (count, report.injections, report.masked, report.detected,
             report.silent, report.coverage), widths,
        ))
    lines.append("-" * 66)
    lines.append("k = 1 is perfect by Theorem 4.  Uncorrelated random multi-")
    lines.append("faults stay covered in practice (each strike is checked")
    lines.append("independently), but the guarantee is gone: a *correlated*")
    lines.append("pair -- same corrupt value into both copies -- evades every")
    lines.append("check, as the witness below shows.")
    lines.append("")

    # The deterministic witness on the Section 2.2 store example.
    store = _paper_store_program()
    schedule = correlated_double_fault("r1", "r3", 666,
                                       green_at_step=4, blue_at_step=8)
    trace = run_faults(store, schedule)
    lines.append(
        "correlated pair witness (store example): "
        f"outcome={trace.outcome.value}, outputs={trace.outputs} "
        "(expected silent corruption of (256, 666))"
    )
    if coverages[0] != 1.0:
        raise AssertionError("single-fault coverage must be perfect")
    if trace.detected:
        raise AssertionError("the correlated pair should evade detection")
    emit_json("fault_model_boundary", {
        "config": {"kernel": KERNEL, "samples": SAMPLES},
        "by_fault_count": by_count,
        "correlated_pair_detected": trace.detected,
    })
    return lines


def _paper_store_program():
    """The Section 2.2 store sequence, assembled from text."""
    from repro.asm import parse_program

    return parse_program("""
.gprs 8
.data
  word 256 = 0
.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 5
  mov r4, B 256
  stB r4, r3
  halt
""")


def test_fault_model_boundary(benchmark):
    lines = benchmark.pedantic(run_table, rounds=1, iterations=1)
    emit_table("fault_model_boundary", lines)
