"""Ablation: sensitivity to the TAL_FT hardware-structure parameters.

Sweeps the two structures the paper adds to the machine:

* the **store queue**: forwarding latency from ``stG`` to the matching
  ``stB``'s compare, and capacity;
* the **destination register** path: forwarding latency from the green
  announcement to the blue commit.

These are exactly the "timing and dependences of the hardware structure
accesses" the paper emulated with extra instructions; the sweep shows how
much of the 1.34x overhead they account for.
"""

from __future__ import annotations

from typing import List

from repro.simulator import MachineConfig, record_block_path, simulate
from repro.workloads import compile_kernel

from _bench_utils import emit_json, emit_table, format_row, geomean

KERNELS = ("vpr", "gcc", "jpeg", "epic", "twolf", "mpeg2")

LATENCIES = (0, 1, 2, 4, 8)
DEPTHS = (1, 2, 4, 16)


def _geomean_ratio(config: MachineConfig) -> float:
    ratios = []
    for name in KERNELS:
        baseline = compile_kernel(name, "baseline")
        protected = compile_kernel(name, "ft")
        ratios.append(
            simulate(protected, config).cycles
            / simulate(baseline, config).cycles
        )
    return geomean(ratios)


def run_table() -> List[str]:
    widths = (26,) + tuple(9 for _ in LATENCIES)
    lines = [
        "forwarding-latency sweep (geomean overhead):",
        format_row(("structure",) + tuple(f"lat={l}" for l in LATENCIES),
                   widths),
        "-" * 74,
    ]
    queue_row = ["store queue (stG -> stB)"]
    dest_row = ["dest register (G -> B)"]
    for latency in LATENCIES:
        queue_row.append(_geomean_ratio(
            MachineConfig(queue_forward_latency=latency)
        ))
        dest_row.append(_geomean_ratio(
            MachineConfig(dest_forward_latency=latency)
        ))
    lines.append(format_row(tuple(queue_row), widths))
    lines.append(format_row(tuple(dest_row), widths))
    lines.append("")
    lines.append("store-queue capacity sweep (geomean overhead):")
    depth_widths = (26,) + tuple(9 for _ in DEPTHS)
    lines.append(format_row(
        ("depth",) + tuple(str(d) for d in DEPTHS), depth_widths
    ))
    depth_row = ["queue entries"]
    for depth in DEPTHS:
        depth_row.append(_geomean_ratio(
            MachineConfig(store_queue_depth=depth)
        ))
    lines.append(format_row(tuple(depth_row), depth_widths))
    emit_json("ablation_queue", {
        "kernels": list(KERNELS),
        "queue_forward_latency": dict(zip(map(str, LATENCIES),
                                          queue_row[1:])),
        "dest_forward_latency": dict(zip(map(str, LATENCIES),
                                         dest_row[1:])),
        "store_queue_depth": dict(zip(map(str, DEPTHS), depth_row[1:])),
    })
    return lines


def test_ablation_hardware_structures(benchmark):
    lines = benchmark.pedantic(run_table, rounds=1, iterations=1)
    emit_table("ablation_queue", lines)
