"""Campaign-service control-plane costs: accept latency and job flow.

PR 9 made ``talft serve`` durable (journaled job store) and multi-tenant
(fair scheduler, bounded queue).  Both features buy robustness with
control-plane work on the submission path -- a fair-queue insert, and in
durable mode an fsync per accepted job -- so this bench measures what a
client actually feels:

* **submit latency** -- wall time of ``POST /jobs`` against a service
  whose worker is parked (submissions purely enqueue), in-memory vs
  ``--state-dir`` durable mode.  Durable accepts pay an fsync by design:
  a ``202`` must survive a crash one millisecond later;
* **jobs/sec under a saturated queue** -- fill the queue with minimal
  one-step campaigns, then time the service draining every one of them
  to ``done`` through scheduler dispatch + campaign execution +
  settlement;
* **429 rejection latency** -- the cost of backpressure itself; turning
  work away must be far cheaper than accepting it.

Contracts (loose by design -- this is a control plane, not a kernel):
in-memory submit p95 stays under 100 ms on any plausible host, the
saturated queue drains at >= 1 job/sec, and every accepted job settles
``done``.  Results go to ``BENCH_service.json``.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List

from repro.service.server import CampaignService, http_server

from _bench_utils import emit_json, emit_table, format_row

#: Purely-enqueued submissions measured per mode.
_SUBMITS = 100
#: Jobs drained by the saturation measurement.
_SATURATION_JOBS = 24
#: 429 responses timed.
_REJECTIONS = 50

_MAX_SUBMIT_P95_MS = 100.0
_MIN_JOBS_PER_S = 1.0

#: A job the scheduler can't finish quickly: parks the single worker.
_BLOCKER = {"kernel": "adpcm",
            "config": {"max_injection_steps": 24, "max_sites_per_step": 6,
                       "max_values_per_site": 2, "seed": 7}}
#: The smallest real campaign: one step, two injections.
_TINY = {"kernel": "adpcm",
         "config": {"max_injection_steps": 1, "max_sites_per_step": 2,
                    "max_values_per_site": 1, "seed": 11}}


def _post(base: str, payload: Dict):
    request = urllib.request.Request(
        base + "/jobs", data=json.dumps(payload).encode(), method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _serve(**service_kwargs):
    server, service = http_server(
        "127.0.0.1", 0, CampaignService(**service_kwargs))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, service, f"http://127.0.0.1:{server.server_address[1]}"


def _stop(server, service):
    server.shutdown()
    server.server_close()
    service._scheduler.drain(timeout=60, interrupt=True)
    if service.store is not None:
        service.store.close()


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _latency_stats(samples_s: List[float]) -> Dict[str, float]:
    in_ms = [seconds * 1000.0 for seconds in samples_s]
    return {
        "mean_ms": sum(in_ms) / len(in_ms),
        "p50_ms": _percentile(in_ms, 0.50),
        "p95_ms": _percentile(in_ms, 0.95),
    }


def _wait_running(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = service.job(job_id)
        if job["status"] == "running":
            return
        time.sleep(0.01)
    raise AssertionError(f"{job_id} never started running")


def _measure_submit_latency(state_dir=None) -> Dict[str, float]:
    """Time POST /jobs while the worker is parked: pure accept cost
    (validation + fair-queue insert +, in durable mode, the fsync)."""
    server, service, base = _serve(state_dir=state_dir, queue_limit=4096)
    try:
        status, blocker = _post(base, _BLOCKER)
        assert status == 202, blocker
        _wait_running(service, blocker["id"])
        samples = []
        for _ in range(_SUBMITS):
            start = time.perf_counter()
            status, body = _post(base, _TINY)
            samples.append(time.perf_counter() - start)
            assert status == 202, body
    finally:
        _stop(server, service)
    return _latency_stats(samples)


def _measure_saturated_throughput() -> Dict[str, float]:
    """Fill the queue to its limit, then time the drain to settlement."""
    server, service, base = _serve(queue_limit=_SATURATION_JOBS + 1)
    try:
        ids = []
        for _ in range(_SATURATION_JOBS):
            status, body = _post(base, _TINY)
            assert status == 202, body
            ids.append(body["id"])
        start = time.perf_counter()
        for job_id in ids:
            job = service.wait(job_id, timeout=600)
            assert job["status"] == "done", job["error"]
        elapsed = time.perf_counter() - start
    finally:
        _stop(server, service)
    return {"jobs": _SATURATION_JOBS, "seconds": elapsed,
            "jobs_per_s": _SATURATION_JOBS / elapsed}


def _measure_rejection_latency() -> Dict[str, float]:
    """Time the 429 path on a full queue: backpressure must be cheap."""
    server, service, base = _serve(queue_limit=1)
    try:
        status, blocker = _post(base, _BLOCKER)
        assert status == 202, blocker
        _wait_running(service, blocker["id"])
        # Keep the queue saturated as the worker drains it: only time
        # the posts that actually bounce.  Accepted refills are free to
        # run; they are one-step jobs.
        samples = []
        attempts = 0
        while len(samples) < _REJECTIONS:
            attempts += 1
            assert attempts < 50 * _REJECTIONS, \
                "queue never stayed saturated"
            start = time.perf_counter()
            status, body = _post(base, _TINY)
            elapsed = time.perf_counter() - start
            if status == 429:
                assert body["retry_after"] >= 1
                samples.append(elapsed)
            else:
                assert status == 202, (status, body)
    finally:
        _stop(server, service)
    return _latency_stats(samples)


def run_service_table() -> List[str]:
    with tempfile.TemporaryDirectory() as state_dir:
        durable = _measure_submit_latency(state_dir=state_dir)
    in_memory = _measure_submit_latency()
    throughput = _measure_saturated_throughput()
    rejection = _measure_rejection_latency()

    widths = (30, 12, 12, 12)
    lines = [
        format_row(("POST /jobs path", "mean_ms", "p50_ms", "p95_ms"),
                   widths),
        "-" * 70,
        format_row(("accept (in-memory)", in_memory["mean_ms"],
                    in_memory["p50_ms"], in_memory["p95_ms"]), widths),
        format_row(("accept (durable, fsync)", durable["mean_ms"],
                    durable["p50_ms"], durable["p95_ms"]), widths),
        format_row(("reject 429 (queue full)", rejection["mean_ms"],
                    rejection["p50_ms"], rejection["p95_ms"]), widths),
        "-" * 70,
        f"saturated queue: {throughput['jobs']} one-step jobs settled in "
        f"{throughput['seconds']:.2f}s = "
        f"{throughput['jobs_per_s']:.1f} jobs/s",
        f"contracts: in-memory submit p95 <= {_MAX_SUBMIT_P95_MS:.0f} ms, "
        f"drain >= {_MIN_JOBS_PER_S:.0f} job/s",
    ]

    if in_memory["p95_ms"] > _MAX_SUBMIT_P95_MS:
        raise AssertionError(
            f"in-memory submit p95 was {in_memory['p95_ms']:.1f} ms; "
            f"the control-plane contract allows "
            f"{_MAX_SUBMIT_P95_MS:.0f} ms")
    if throughput["jobs_per_s"] < _MIN_JOBS_PER_S:
        raise AssertionError(
            f"saturated queue drained at "
            f"{throughput['jobs_per_s']:.2f} jobs/s; the contract "
            f"requires >= {_MIN_JOBS_PER_S:.0f}")

    emit_json("service", {
        "submit_latency": {"in_memory": in_memory, "durable": durable},
        "rejection_latency_429": rejection,
        "saturated_throughput": throughput,
        "contracts": {
            "max_in_memory_submit_p95_ms": _MAX_SUBMIT_P95_MS,
            "min_jobs_per_s": _MIN_JOBS_PER_S,
        },
        "config": {
            "submissions_per_mode": _SUBMITS,
            "saturation_jobs": _SATURATION_JOBS,
            "rejections_timed": _REJECTIONS,
            "tiny_job": _TINY,
        },
    })
    return lines


def test_service_control_plane(benchmark):
    lines = benchmark.pedantic(run_service_table, rounds=1, iterations=1)
    emit_table("service", lines)
