"""Hybrid versus software-only: the Section 2.2 TOCTOU argument, measured.

The paper motivates its hardware additions by arguing software-only
duplication (SWIFT-style) is inherently leaky: a fault striking between
the software compare and the conventional store silently corrupts output.
This bench runs the same kernels through three backends --

* unprotected baseline,
* TAL-FT (hybrid: checking store queue + destination register),
* SWIFT-style software-only (compare-and-branch before stores/branches),

-- and reports both the Figure 10-style overhead and the injected-fault
coverage of each.  Expected shape: both protected builds cost ≈1.3x, but
only the hybrid build achieves *perfect* coverage; the software-only
build leaks silent corruptions through its check-to-use windows, and has
no typing story at all (the checker rejects plain-ISA code).
"""

from __future__ import annotations

from typing import List

from repro.compiler import compile_source
from repro.compiler.swift import ERROR_PORT
from repro.injection import CampaignConfig, run_campaign
from repro.simulator import simulate
from repro.workloads import compile_kernel, kernel_source

from _bench_utils import emit_json, emit_table, format_row, geomean

KERNELS = ("vpr", "gcc", "jpeg", "epic", "mpeg2")

_CAMPAIGN = CampaignConfig(
    max_injection_steps=40,
    max_values_per_site=3,
    max_sites_per_step=10,
    seed=5,
)


def run_table() -> List[str]:
    widths = (8, 9, 9, 12, 12, 12, 12)
    lines = [
        format_row(("kernel", "FT x", "SWIFT x", "FT silent",
                    "SWIFT silent", "FT cover", "SWIFT cover"), widths),
        "-" * 80,
    ]
    ft_ratios: List[float] = []
    swift_ratios: List[float] = []
    swift_total_silent = 0
    per_kernel = {}
    for name in KERNELS:
        source = kernel_source(name)
        baseline = compile_kernel(name, "baseline")
        protected = compile_kernel(name, "ft")
        software = compile_source(source, mode="swift")

        base_cycles = simulate(baseline).cycles
        ft_ratio = simulate(protected).cycles / base_cycles
        swift_ratio = simulate(software).cycles / base_cycles
        ft_ratios.append(ft_ratio)
        swift_ratios.append(swift_ratio)

        ft_report = run_campaign(protected.program, _CAMPAIGN)
        swift_config = CampaignConfig(
            **{**_CAMPAIGN.__dict__, "error_port": ERROR_PORT}
        )
        swift_report = run_campaign(software.program, swift_config)
        swift_total_silent += swift_report.silent
        if ft_report.silent:
            raise AssertionError(f"hybrid build leaked on {name}")
        per_kernel[name] = {
            "ft_overhead": ft_ratio, "swift_overhead": swift_ratio,
            "ft_silent": ft_report.silent,
            "swift_silent": swift_report.silent,
            "ft_coverage": ft_report.coverage,
            "swift_coverage": swift_report.coverage,
        }
        lines.append(format_row(
            (name, ft_ratio, swift_ratio, ft_report.silent,
             swift_report.silent, f"{ft_report.coverage:.3%}",
             f"{swift_report.coverage:.3%}"), widths,
        ))
    lines.append("-" * 80)
    lines.append(format_row(
        ("geomean", geomean(ft_ratios), geomean(swift_ratios),
         0, swift_total_silent, "", ""), widths,
    ))
    lines.append("")
    lines.append("comparable cost -- but only the hybrid design closes the")
    lines.append("check-to-use window: software-only leaks silent")
    lines.append("corruptions, and its binaries carry no proof (the TAL_FT")
    lines.append("checker rejects plain-ISA code).")
    if swift_total_silent == 0:
        raise AssertionError(
            "expected the software-only build to leak at least one "
            "silent corruption across the campaign"
        )
    emit_json("swift_comparison", {
        "ft_geomean_overhead": geomean(ft_ratios),
        "swift_geomean_overhead": geomean(swift_ratios),
        "swift_total_silent": swift_total_silent,
        "kernels": per_kernel,
    })
    return lines


def test_swift_comparison(benchmark):
    lines = benchmark.pedantic(run_table, rounds=1, iterations=1)
    emit_table("swift_comparison", lines)
