"""Campaign throughput: the parallel checkpoint/replay engine vs the seed.

The seed's injection engine cloned the machine state before *every* dynamic
step of the reference run and dispatched instructions through an isinstance
chain, allocating a fresh ``StepResult`` (and usually a ``ColoredValue``)
per step.  This PR replaced that with sparse checkpoints + deterministic
replay, a per-type dispatch table with preallocated step results, and a
process-pool path (``run_campaign(..., jobs=N)``) whose reports are
bit-identical to the serial engine's.

On top of that engine, the closure-compiled execution backend
(``repro.exec``) replaces the interpreter inside every faulty run: the
program is compiled once into per-address closures with superinstruction
fusion and shared through a process-wide cache, while reports stay
bit-identical (``tests/test_exec_backend.py``).

The batch-vectorized campaign backend (``repro.exec.vector`` +
``repro.injection.batch``) goes one level further: every fault variant of
an injection step becomes one lane of a structure-of-arrays numpy batch,
stepped in lockstep against the reference schedule, with per-lane
fallback to the compiled engine on divergence.

To keep the comparison self-contained, this bench vendors the seed engine --
the isinstance-chain interpreter step and the eager-snapshot campaign loop,
verbatim in structure -- and times the seed plus **every backend in the
``repro.exec.BACKENDS`` registry** on the same sampled ``vpr`` campaign,
interleaved in one run so each measurement sees the same machine regimes.
The JSON artifact carries the full per-backend speedup matrix.  The
contract asserted here:

* the checkpoint/replay serial path (interpreter backend) is faster than
  the seed engine,
* ``jobs=4`` is at least 2x the seed engine's injections/sec,
* the compiled backend is at least 3x the checkpoint/replay serial
  engine it replaced as the default, and
* on an exhaustive SEU sweep (every site, every representative value --
  the regime campaigns actually run at scale), the vector backend is at
  least 5x the compiled backend, with bit-identical reports, and
* masked-fault equivalence pruning (``repro.injection.prune``) on top of
  the vector backend is at least 3x the unpruned vector backend on the
  same sweep, still bit-identical.

(The container this was developed on exposes a single CPU, so the pool
rows merely stay close to serial despite process overhead; on real
multicore hosts the pool multiplies the serial gain.)
"""

from __future__ import annotations

import random
import time
from dataclasses import replace
from typing import List, Tuple

import pytest

from repro.core.colors import Color, ColoredValue, green
from repro.core.errors import MachineStuck
from repro.core.faults import apply_fault, fault_sites, is_effective
from repro.core.instructions import (
    ArithRRI, ArithRRR, Bz, Halt, Jmp, Load, Mov, PlainBz, PlainJmp,
    PlainLoad, PlainStore, Store, alu_eval,
)
from repro.core.machine import Outcome, Trace
from repro.core.registers import DEST, PC_B, PC_G
from repro.core.semantics import OobPolicy, StepResult
from repro.core.state import Status
from repro.exec import BACKENDS
from repro.exec.vector import vector_available
from repro.injection import CampaignConfig, run_campaign
from repro.injection.campaign import CampaignReport, classify
from repro.injection.chaos import report_fingerprint
from repro.injection.values import representative_values, with_value
from repro.workloads import compile_kernel

from _bench_utils import emit_json, emit_table, format_row

#: The sampled campaign every engine runs (mirrors bench_fault_coverage).
#: ``prune=False`` keeps each backend row measuring raw execution speed;
#: the dedicated "pruned" row measures equivalence pruning on top.
_CONFIG = CampaignConfig(
    max_injection_steps=30,
    max_values_per_site=2,
    max_sites_per_step=8,
    seed=20260705,
    prune=False,
)

#: The exhaustive SEU sweep for the vector-vs-compiled contract: every
#: fault site and every representative value at each sampled injection
#: step, so each step turns into a wide lane batch -- the regime the
#: vector backend was built for.
_SWEEP_CONFIG = CampaignConfig(
    max_injection_steps=10,
    max_values_per_site=None,
    max_sites_per_step=None,
    seed=20260705,
    prune=False,
)

_JOBS = 4


# ---------------------------------------------------------------------------
# Vendored seed engine (pre-PR): isinstance-chain interpreter + eager
# per-step snapshots + shared-RNG sampling.  Kept verbatim in structure so
# the timing reflects what the engine actually cost before this PR.
# ---------------------------------------------------------------------------


def _seed_bump_pcs(regs) -> None:
    # The seed went through the NamedTuple field properties and the
    # generated ColoredValue.__new__ on every step.
    pc_g = regs.get(PC_G)
    pc_b = regs.get(PC_B)
    regs.set(PC_G, ColoredValue(pc_g.color, pc_g.value + 1))
    regs.set(PC_B, ColoredValue(pc_b.color, pc_b.value + 1))


def _seed_step(state, oob_policy, rand_source) -> StepResult:
    if state.is_terminal:
        raise MachineStuck("cannot step a terminal state")
    if state.ir is None:
        regs = state.regs
        pc_g = regs.value(PC_G)
        pc_b = regs.value(PC_B)
        if pc_g != pc_b:
            state.enter_fault()
            return StepResult((), "fetch-fail")
        if pc_g not in state.code:
            raise MachineStuck(f"fetch from invalid code address {pc_g}")
        state.ir = state.code[pc_g]
        return StepResult((), "fetch")
    instruction, state.ir = state.ir, None
    regs = state.regs
    if isinstance(instruction, ArithRRR):
        result = alu_eval(instruction.op, regs.value(instruction.rs),
                          regs.value(instruction.rt))
        _seed_bump_pcs(regs)
        regs.set(instruction.rd,
                 ColoredValue(regs.color(instruction.rt), result))
        return StepResult((), "op2r")
    if isinstance(instruction, ArithRRI):
        result = alu_eval(instruction.op, regs.value(instruction.rs),
                          instruction.imm.value)
        _seed_bump_pcs(regs)
        regs.set(instruction.rd, ColoredValue(instruction.imm.color, result))
        return StepResult((), "op1r")
    if isinstance(instruction, Mov):
        _seed_bump_pcs(regs)
        regs.set(instruction.rd, instruction.imm)
        return StepResult((), "mov")
    if isinstance(instruction, Load):
        address = regs.value(instruction.rs)
        if instruction.color is Color.GREEN:
            hit = state.queue.find(address)
            if hit is not None:
                _seed_bump_pcs(regs)
                regs.set(instruction.rd, ColoredValue(Color.GREEN, hit[1]))
                return StepResult((), "ldG-queue")
            if address in state.memory:
                _seed_bump_pcs(regs)
                regs.set(instruction.rd,
                         ColoredValue(Color.GREEN, state.memory[address]))
                return StepResult((), "ldG-mem")
            if oob_policy is OobPolicy.TRAP:
                state.enter_fault()
                return StepResult((), "ldG-fail")
            _seed_bump_pcs(regs)
            regs.set(instruction.rd, ColoredValue(Color.GREEN, rand_source()))
            return StepResult((), "ldG-rand")
        if address in state.memory:
            _seed_bump_pcs(regs)
            regs.set(instruction.rd,
                     ColoredValue(Color.BLUE, state.memory[address]))
            return StepResult((), "ldB-mem")
        if oob_policy is OobPolicy.TRAP:
            state.enter_fault()
            return StepResult((), "ldB-fail")
        _seed_bump_pcs(regs)
        regs.set(instruction.rd, ColoredValue(Color.BLUE, rand_source()))
        return StepResult((), "ldB-rand")
    if isinstance(instruction, Store):
        address = regs.value(instruction.rd)
        value = regs.value(instruction.rs)
        if instruction.color is Color.GREEN:
            state.queue.push_front(address, value)
            _seed_bump_pcs(regs)
            return StepResult((), "stG-queue")
        if len(state.queue) == 0:
            state.enter_fault()
            return StepResult((), "stB-queue-fail")
        queued_address, queued_value = state.queue.back()
        if address != queued_address or value != queued_value:
            state.enter_fault()
            return StepResult((), "stB-mem-fail")
        state.queue.pop_back()
        state.memory[queued_address] = queued_value
        _seed_bump_pcs(regs)
        if queued_address >= state.observable_min:
            return StepResult(((queued_address, queued_value),), "stB-mem")
        return StepResult((), "stB-mem")
    if isinstance(instruction, Jmp):
        if instruction.color is Color.GREEN:
            if regs.value(DEST) != 0:
                state.enter_fault()
                return StepResult((), "jmpG-fail")
            target = regs.get(instruction.rd)
            _seed_bump_pcs(regs)
            regs.set(DEST, target)
            return StepResult((), "jmpG")
        dest = regs.get(DEST)
        if dest.value == 0 or regs.value(instruction.rd) != dest.value:
            state.enter_fault()
            return StepResult((), "jmpB-fail")
        regs.set(PC_G, dest)
        regs.set(PC_B, regs.get(instruction.rd))
        regs.set(DEST, green(0))
        return StepResult((), "jmpB")
    if isinstance(instruction, Bz):
        z_value = regs.value(instruction.rz)
        dest_value = regs.value(DEST)
        if z_value != 0:
            if dest_value != 0:
                state.enter_fault()
                return StepResult((), "bz-untaken-fail")
            _seed_bump_pcs(regs)
            return StepResult((), "bz-untaken")
        if instruction.color is Color.GREEN:
            if dest_value != 0:
                state.enter_fault()
                return StepResult((), "bzG-taken-fail")
            target = regs.get(instruction.rd)
            _seed_bump_pcs(regs)
            regs.set(DEST, target)
            return StepResult((), "bzG-taken")
        if dest_value == 0 or regs.value(instruction.rd) != dest_value:
            state.enter_fault()
            return StepResult((), "bzB-taken-fail")
        regs.set(PC_G, regs.get(DEST))
        regs.set(PC_B, regs.get(instruction.rd))
        regs.set(DEST, green(0))
        return StepResult((), "bzB-taken")
    if isinstance(instruction, Halt):
        state.halt()
        return StepResult((), "halt")
    if isinstance(instruction, (PlainLoad, PlainStore, PlainJmp, PlainBz)):
        raise MachineStuck("vendored seed engine only runs ft builds")
    raise MachineStuck(f"unknown instruction {instruction!r}")


def _seed_run(state, oob_policy, max_steps) -> Trace:
    outputs: List[Tuple[int, int]] = []
    steps_taken = 0
    while steps_taken < max_steps:
        if state.is_terminal:
            break
        try:
            result = _seed_step(state, oob_policy, lambda: 0)
        except MachineStuck:
            return Trace(Outcome.STUCK, outputs, steps_taken)
        outputs.extend(result.outputs)
        steps_taken += 1
    if state.status is Status.HALTED:
        outcome = Outcome.HALTED
    elif state.status is Status.FAULT_DETECTED:
        outcome = Outcome.FAULT_DETECTED
    else:
        outcome = Outcome.RUNNING
    return Trace(outcome, outputs, steps_taken)


def _seed_snapshot_run(program, config):
    """Eager snapshots: one full state clone before every dynamic step."""
    state = program.boot()
    snapshots, outputs, outputs_before = [], [], []
    steps = 0
    while steps < config.max_steps and not state.is_terminal:
        snapshots.append(state.clone())
        outputs_before.append(len(outputs))
        result = _seed_step(state, config.oob_policy, lambda: 0)
        outputs.extend(result.outputs)
        steps += 1
    outcome = Outcome.HALTED if state.status is Status.HALTED else Outcome.RUNNING
    return Trace(outcome, outputs, steps), snapshots, outputs_before


def _seed_injection_steps(total, config):
    steps = range(0, total, config.step_stride)
    if config.max_injection_steps is not None and \
            len(steps) > config.max_injection_steps:
        stride = max(1, len(steps) // config.max_injection_steps)
        steps = range(0, total, config.step_stride * stride)
    return iter(steps)


def seed_run_campaign(program, config) -> CampaignReport:
    """The seed's serial campaign loop, on the vendored seed interpreter."""
    rng = random.Random(config.seed) if config.seed is not None else None
    reference, snapshots, outputs_before = _seed_snapshot_run(program, config)
    budget = reference.steps + config.step_slack
    report = CampaignReport(reference=reference)
    for step_index in _seed_injection_steps(len(snapshots), config):
        base = snapshots[step_index]
        sites = list(fault_sites(base))
        if config.max_sites_per_step is not None \
                and len(sites) > config.max_sites_per_step:
            sampler = rng if rng is not None else random.Random(step_index)
            sites = sampler.sample(sites, config.max_sites_per_step)
        for site in sites:
            values = representative_values(base, site, program, rng)
            if config.max_values_per_site is not None:
                values = values[: config.max_values_per_site]
            for value in values:
                fault = with_value(site, value)
                if config.skip_ineffective and not is_effective(base, fault):
                    continue
                faulty = base.clone()
                apply_fault(faulty, fault)
                trace = _seed_run(faulty, config.oob_policy, budget)
                produced = reference.outputs[: outputs_before[step_index]]
                merged = Trace(trace.outcome, produced + trace.outputs,
                               trace.steps)
                result = classify(merged, reference, config.error_port)
                report.injections += 1
                report.counts[result] = report.counts.get(result, 0) + 1
    return report


# ---------------------------------------------------------------------------
# The bench
# ---------------------------------------------------------------------------


def _timed(runner, reps: int = 1):
    runner()  # warm up (imports, code caches, pool forks)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        report = runner()
        best = min(best, time.perf_counter() - start)
    return report, best


def _timed_interleaved(runners, reps: int):
    """Best-of-``reps`` for several runners, measured round-robin.

    The speedup contract compares ratios, and shared/throttled machines
    drift between fast and slow regimes over seconds; interleaving the
    measurements ensures every runner sees the same regimes, so each
    best-of falls in the same (fastest) window.
    """
    reports = [runner() for runner in runners]  # warm up
    bests = [float("inf")] * len(runners)
    for _ in range(reps):
        for index, runner in enumerate(runners):
            start = time.perf_counter()
            reports[index] = runner()
            bests[index] = min(bests[index], time.perf_counter() - start)
    return list(zip(reports, bests))


def _speedup_matrix(rates: "dict[str, float]") -> "dict[str, dict[str, float]]":
    """``matrix[a][b]`` = how many times faster engine ``a`` is than ``b``."""
    return {
        row: {col: rates[row] / rates[col] for col in rates}
        for row in rates
    }


def run_throughput_table() -> List[str]:
    if not vector_available():
        pytest.skip("numpy unavailable: the vector backend rows cannot run")
    program = compile_kernel("vpr", "ft").program
    seed_report, seed_time = _timed(
        lambda: seed_run_campaign(program, _CONFIG))
    # Every registered backend, timed in ONE interleaved run (best-of-4):
    # the "step" row *is* the PR-1 checkpoint/replay engine driving the
    # interpreter, and the rows the speedup contracts compare all see the
    # same machine regimes.
    backends = tuple(BACKENDS)
    pruned_config = replace(_CONFIG, prune=True)
    runners = [
        (lambda b=backend: run_campaign(program, _CONFIG, jobs=1,
                                        backend=b))
        for backend in backends
    ]
    runners.append(lambda: run_campaign(program, pruned_config, jobs=1,
                                        backend="vector"))
    rows = backends + ("pruned",)
    timed = _timed_interleaved(tuple(runners), reps=4)
    by_backend = dict(zip(rows, timed))
    pool_report, pool_time = _timed(
        lambda: run_campaign(program, _CONFIG, jobs=_JOBS,
                             backend="compiled"))

    rates = {"seed": seed_report.injections / seed_time}
    for backend, (report, elapsed) in by_backend.items():
        rates[backend] = report.injections / elapsed
    rates[f"jobs{_JOBS}"] = pool_report.injections / pool_time
    matrix = _speedup_matrix(rates)
    serial_rate = rates["step"]
    compiled_speedup = matrix["compiled"]["step"]

    widths = (26, 12, 10, 12, 10)
    lines = [
        format_row(("engine", "injections", "time_s", "inj_per_s",
                    "vs_seed"), widths),
        "-" * 76,
        format_row(("seed eager serial", seed_report.injections,
                    seed_time, rates["seed"], 1.0), widths),
    ]
    row_labels = {
        "step": "ckpt/replay serial (step)",
        "compiled": "ckpt/replay compiled",
        "vector": "vector lane batches",
        "pruned": "vector + equiv pruning",
    }
    for backend in rows:
        report, elapsed = by_backend[backend]
        lines.append(format_row(
            (row_labels.get(backend, backend), report.injections, elapsed,
             rates[backend], matrix[backend]["seed"]), widths))
    lines.append(format_row(
        (f"compiled jobs={_JOBS}", pool_report.injections, pool_time,
         rates[f"jobs{_JOBS}"], matrix[f"jobs{_JOBS}"]["seed"]), widths))
    lines += [
        "-" * 76,
        f"campaign: vpr (ft), {_CONFIG.max_injection_steps} sampled steps, "
        f"<= {_CONFIG.max_sites_per_step} sites/step, "
        f"<= {_CONFIG.max_values_per_site} values/site",
        f"contract: step serial > seed, jobs={_JOBS} >= 2x seed, "
        f"compiled >= 3x step serial "
        f"(got {matrix['step']['seed']:.2f}x, "
        f"{matrix[f'jobs{_JOBS}']['seed']:.2f}x, {compiled_speedup:.2f}x)",
    ]
    # Every engine must still agree the kernel has perfect coverage, and
    # every registered backend (plus the pool) must produce bit-identical
    # reports -- the contract the vector backend is built around.
    reports = [seed_report, pool_report] \
        + [report for report, _ in by_backend.values()]
    for report in reports:
        if report.coverage != 1.0:
            raise AssertionError("a campaign engine lost fault coverage")
    reference_print = report_fingerprint(by_backend["step"][0])
    for backend in rows:
        if report_fingerprint(by_backend[backend][0]) != reference_print:
            raise AssertionError(
                f"backend {backend!r} report differs from the step backend")
    if report_fingerprint(pool_report) != reference_print:
        raise AssertionError(
            f"jobs={_JOBS} report differs from the step backend")
    if serial_rate <= rates["seed"]:
        raise AssertionError(
            f"new serial engine ({serial_rate:.1f}/s) is not faster than "
            f"the seed engine ({rates['seed']:.1f}/s)")
    if rates[f"jobs{_JOBS}"] < 2.0 * rates["seed"]:
        raise AssertionError(
            f"jobs={_JOBS} ({rates[f'jobs{_JOBS}']:.1f}/s) is below 2x the "
            f"seed engine ({rates['seed']:.1f}/s)")
    if compiled_speedup < 3.0:
        raise AssertionError(
            f"compiled backend ({rates['compiled']:.1f}/s) is below 3x the "
            f"interpreter serial engine ({serial_rate:.1f}/s): "
            f"{compiled_speedup:.2f}x")

    sweep_lines, sweep_json = _run_exhaustive_sweep(program)
    lines += [""] + sweep_lines

    emit_json("campaign_throughput", {
        "config": {
            "kernel": "vpr", "mode": "ft",
            "max_injection_steps": _CONFIG.max_injection_steps,
            "max_sites_per_step": _CONFIG.max_sites_per_step,
            "max_values_per_site": _CONFIG.max_values_per_site,
            "seed": _CONFIG.seed, "jobs": _JOBS,
        },
        "backends": list(backends),
        "injections": by_backend["compiled"][0].injections,
        "throughput_inj_per_s": {
            "seed_eager_serial": rates["seed"],
            "ckpt_replay_serial_step": serial_rate,
            "ckpt_replay_compiled": rates["compiled"],
            "vector": rates["vector"],
            "pruned": rates["pruned"],
            f"compiled_jobs{_JOBS}": rates[f"jobs{_JOBS}"],
        },
        "speedup": {
            "step_vs_seed": matrix["step"]["seed"],
            "compiled_vs_step": compiled_speedup,
            "compiled_vs_seed": matrix["compiled"]["seed"],
            "vector_vs_compiled": matrix["vector"]["compiled"],
            "vector_vs_seed": matrix["vector"]["seed"],
            "pruned_vs_vector": matrix["pruned"]["vector"],
            "pruned_vs_seed": matrix["pruned"]["seed"],
            f"jobs{_JOBS}_vs_seed": matrix[f"jobs{_JOBS}"]["seed"],
        },
        "speedup_matrix": matrix,
        "exhaustive_sweep": sweep_json,
    })
    return lines


def _run_exhaustive_sweep(program) -> Tuple[List[str], dict]:
    """The vector backend's headline regime: exhaustive SEU sweeps.

    Every fault site and every representative value at each sampled
    injection step -- hundreds of lanes per batch -- timed compiled vs
    vector vs vector+pruning, paired and interleaved.  Contracts:
    vector >= 5x compiled, pruning >= 3x vector, reports bit-identical
    across all three.
    """
    pruned_config = replace(_SWEEP_CONFIG, prune=True)
    ((compiled_report, compiled_time), (vector_report, vector_time),
     (pruned_report, pruned_time)) = \
        _timed_interleaved(
            (lambda: run_campaign(program, _SWEEP_CONFIG, jobs=1,
                                  backend="compiled"),
             lambda: run_campaign(program, _SWEEP_CONFIG, jobs=1,
                                  backend="vector"),
             lambda: run_campaign(program, pruned_config, jobs=1,
                                  backend="vector")),
            reps=2)
    compiled_rate = compiled_report.injections / compiled_time
    vector_rate = vector_report.injections / vector_time
    pruned_rate = pruned_report.injections / pruned_time
    speedup = vector_rate / compiled_rate
    pruned_speedup = pruned_rate / vector_rate
    if report_fingerprint(vector_report) != report_fingerprint(
            compiled_report):
        raise AssertionError(
            "exhaustive sweep: vector report differs from compiled")
    if report_fingerprint(pruned_report) != report_fingerprint(
            compiled_report):
        raise AssertionError(
            "exhaustive sweep: pruned report differs from compiled")
    if speedup < 5.0:
        raise AssertionError(
            f"exhaustive sweep: vector backend ({vector_rate:.1f}/s) is "
            f"below 5x the compiled backend ({compiled_rate:.1f}/s): "
            f"{speedup:.2f}x")
    if pruned_speedup < 3.0:
        raise AssertionError(
            f"exhaustive sweep: equivalence pruning ({pruned_rate:.1f}/s) "
            f"is below 3x the vector backend ({vector_rate:.1f}/s): "
            f"{pruned_speedup:.2f}x")
    widths = (26, 12, 10, 12, 10)
    lines = [
        f"exhaustive SEU sweep: vpr (ft), "
        f"{_SWEEP_CONFIG.max_injection_steps} sampled steps, ALL sites, "
        f"ALL values ({compiled_report.injections} injections)",
        format_row(("engine", "injections", "time_s", "inj_per_s",
                    "vs_comp"), widths),
        "-" * 76,
        format_row(("ckpt/replay compiled", compiled_report.injections,
                    compiled_time, compiled_rate, 1.0), widths),
        format_row(("vector lane batches", vector_report.injections,
                    vector_time, vector_rate, speedup), widths),
        format_row(("vector + equiv pruning", pruned_report.injections,
                    pruned_time, pruned_rate,
                    pruned_rate / compiled_rate), widths),
        "-" * 76,
        f"contract: vector >= 5x compiled and pruning >= 3x vector on "
        f"the exhaustive sweep (got {speedup:.2f}x, "
        f"{pruned_speedup:.2f}x), reports bit-identical",
    ]
    return lines, {
        "config": {
            "kernel": "vpr", "mode": "ft",
            "max_injection_steps": _SWEEP_CONFIG.max_injection_steps,
            "max_sites_per_step": None,
            "max_values_per_site": None,
            "seed": _SWEEP_CONFIG.seed,
        },
        "injections": compiled_report.injections,
        "throughput_inj_per_s": {
            "ckpt_replay_compiled": compiled_rate,
            "vector": vector_rate,
            "pruned": pruned_rate,
        },
        "speedup": {
            "vector_vs_compiled": speedup,
            "pruned_vs_vector": pruned_speedup,
            "pruned_vs_compiled": pruned_rate / compiled_rate,
        },
        "reports_bit_identical": True,
    }


def test_campaign_throughput(benchmark):
    lines = benchmark.pedantic(run_throughput_table, rounds=1, iterations=1)
    emit_table("campaign_throughput", lines)
