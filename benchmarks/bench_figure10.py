"""Figure 10: execution time normalized to the unprotected version.

The paper's only quantitative figure.  For every SPEC CINT2000 /
MediaBench stand-in kernel this bench simulates three binaries on the
Itanium-2-flavored timing model:

* the unprotected baseline (plain ISA, original VELOCITY-style code),
* TAL-FT (the reliability transformation, green-before-blue ordering),
* TAL-FT *without* the ordering constraint (correlating hardware),

and prints execution time normalized to the baseline, per benchmark plus
the geometric mean.  Paper's result: **1.34x** with ordering, **1.30x**
without; the ordering constraint costs only a few percent.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.simulator import DEFAULT_CONFIG, RELAXED_CONFIG, record_block_path, simulate
from repro.workloads import ALL_KERNELS, KERNELS, compile_kernel

from _bench_utils import emit_table, format_row, geomean

_PAPER_WITH_ORDERING = 1.34
_PAPER_WITHOUT_ORDERING = 1.30

_cache: Dict[str, Tuple[int, int, int]] = {}


def measure(name: str) -> Tuple[int, int, int]:
    """(baseline, ft, ft-without-ordering) cycles for one kernel."""
    if name not in _cache:
        baseline = compile_kernel(name, "baseline")
        protected = compile_kernel(name, "ft")
        base_cycles = simulate(baseline).cycles
        path = record_block_path(protected)
        ft_cycles = simulate(protected, DEFAULT_CONFIG, path=path).cycles
        relaxed_cycles = simulate(protected, RELAXED_CONFIG, path=path).cycles
        _cache[name] = (base_cycles, ft_cycles, relaxed_cycles)
    return _cache[name]


def figure10_table() -> Tuple[list, float, float]:
    widths = (10, 6, 10, 10, 10)
    lines = [
        format_row(("benchmark", "suite", "baseline", "TAL-FT",
                    "no-order"), widths),
        "-" * 52,
    ]
    ft_ratios = []
    relaxed_ratios = []
    for name in ALL_KERNELS:
        base, ft, relaxed = measure(name)
        ft_ratios.append(ft / base)
        relaxed_ratios.append(relaxed / base)
        lines.append(format_row(
            (name, KERNELS[name].suite, base, ft / base, relaxed / base),
            widths,
        ))
    lines.append("-" * 52)
    ft_mean = geomean(ft_ratios)
    relaxed_mean = geomean(relaxed_ratios)
    lines.append(format_row(
        ("geomean", "", "", ft_mean, relaxed_mean), widths
    ))
    lines.append("")
    lines.append(f"paper: {_PAPER_WITH_ORDERING:.2f}x with ordering, "
                 f"{_PAPER_WITHOUT_ORDERING:.2f}x without")
    lines.append(f"ours : {ft_mean:.2f}x with ordering, "
                 f"{relaxed_mean:.2f}x without")
    return lines, ft_mean, relaxed_mean


def test_figure10(benchmark):
    """Regenerate Figure 10 and check its shape against the paper."""
    lines, ft_mean, relaxed_mean = benchmark.pedantic(
        figure10_table, rounds=1, iterations=1
    )
    emit_table("figure10", lines)
    # Shape assertions: replication costs far less than 2x on the wide
    # machine; the ordering constraint costs only a few percent.
    assert 1.15 < ft_mean < 1.55
    assert 1.10 < relaxed_mean <= ft_mean
    assert ft_mean - relaxed_mean < 0.10
    benchmark.extra_info["ft_geomean"] = round(ft_mean, 4)
    benchmark.extra_info["relaxed_geomean"] = round(relaxed_mean, 4)


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_kernel_overhead_shape(name, benchmark):
    """Per-kernel: protected runs slower than baseline but below 2x."""
    base, ft, relaxed = benchmark.pedantic(
        measure, args=(name,), rounds=1, iterations=1
    )
    assert base < ft < 2 * base
    assert relaxed <= ft
    benchmark.extra_info["ft_ratio"] = round(ft / base, 4)
