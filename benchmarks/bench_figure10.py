"""Figure 10: execution time normalized to the unprotected version.

The paper's only quantitative figure.  For every SPEC CINT2000 /
MediaBench stand-in kernel this bench simulates three binaries on the
Itanium-2-flavored timing model:

* the unprotected baseline (plain ISA, original VELOCITY-style code),
* TAL-FT (the reliability transformation, green-before-blue ordering),
* TAL-FT *without* the ordering constraint (correlating hardware),

and prints execution time normalized to the baseline, per benchmark plus
the geometric mean.  Paper's result: **1.34x** with ordering, **1.30x**
without; the ordering constraint costs only a few percent.

The simulator's functional pass (recording the dynamic block path) runs
on either execution backend; the two backend columns time that pass per
kernel and assert the resulting cycle counts are identical -- the block
path is an observable of execution, so backend parity covers it.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import pytest

from repro.simulator import DEFAULT_CONFIG, RELAXED_CONFIG, record_block_path, simulate
from repro.workloads import ALL_KERNELS, KERNELS, compile_kernel

from _bench_utils import emit_json, emit_table, format_row, geomean

_PAPER_WITH_ORDERING = 1.34
_PAPER_WITHOUT_ORDERING = 1.30

#: name -> (baseline, ft, relaxed, step_path_ms, compiled_path_ms)
_cache: Dict[str, Tuple[int, int, int, float, float]] = {}


def _time_path(compiled, backend: str) -> Tuple[list, float]:
    path = record_block_path(compiled, backend=backend)  # warm caches
    start = time.perf_counter()
    path = record_block_path(compiled, backend=backend)
    return path, (time.perf_counter() - start) * 1e3


def measure(name: str) -> Tuple[int, int, int, float, float]:
    """(baseline, ft, no-ordering) cycles + functional-pass ms per backend."""
    if name not in _cache:
        baseline = compile_kernel(name, "baseline")
        protected = compile_kernel(name, "ft")
        base_cycles = simulate(baseline).cycles
        step_path, step_ms = _time_path(protected, "step")
        compiled_path, compiled_ms = _time_path(protected, "compiled")
        assert step_path == compiled_path, (
            f"{name}: functional block path differs across backends")
        ft_cycles = simulate(protected, DEFAULT_CONFIG,
                             path=compiled_path).cycles
        relaxed_cycles = simulate(protected, RELAXED_CONFIG,
                                  path=compiled_path).cycles
        _cache[name] = (base_cycles, ft_cycles, relaxed_cycles,
                        step_ms, compiled_ms)
    return _cache[name]


def figure10_table() -> Tuple[list, float, float]:
    widths = (10, 6, 10, 10, 10, 9, 9)
    lines = [
        format_row(("benchmark", "suite", "baseline", "TAL-FT", "no-order",
                    "step_ms", "comp_ms"), widths),
        "-" * 74,
    ]
    ft_ratios = []
    relaxed_ratios = []
    per_kernel = {}
    for name in ALL_KERNELS:
        base, ft, relaxed, step_ms, compiled_ms = measure(name)
        ft_ratios.append(ft / base)
        relaxed_ratios.append(relaxed / base)
        per_kernel[name] = {
            "baseline_cycles": base,
            "ft_ratio": ft / base,
            "relaxed_ratio": relaxed / base,
            "functional_pass_ms": {"step": step_ms,
                                   "compiled": compiled_ms},
        }
        lines.append(format_row(
            (name, KERNELS[name].suite, base, ft / base, relaxed / base,
             step_ms, compiled_ms),
            widths,
        ))
    lines.append("-" * 74)
    ft_mean = geomean(ft_ratios)
    relaxed_mean = geomean(relaxed_ratios)
    lines.append(format_row(
        ("geomean", "", "", ft_mean, relaxed_mean, "", ""), widths
    ))
    lines.append("")
    lines.append(f"paper: {_PAPER_WITH_ORDERING:.2f}x with ordering, "
                 f"{_PAPER_WITHOUT_ORDERING:.2f}x without")
    lines.append(f"ours : {ft_mean:.2f}x with ordering, "
                 f"{relaxed_mean:.2f}x without")
    lines.append("step_ms/comp_ms: functional-pass wall time per backend "
                 "(cycle counts are backend-invariant, asserted)")
    emit_json("figure10", {
        "paper": {"ft_geomean": _PAPER_WITH_ORDERING,
                  "relaxed_geomean": _PAPER_WITHOUT_ORDERING},
        "ft_geomean": ft_mean,
        "relaxed_geomean": relaxed_mean,
        "kernels": per_kernel,
    })
    return lines, ft_mean, relaxed_mean


def test_figure10(benchmark):
    """Regenerate Figure 10 and check its shape against the paper."""
    lines, ft_mean, relaxed_mean = benchmark.pedantic(
        figure10_table, rounds=1, iterations=1
    )
    emit_table("figure10", lines)
    # Shape assertions: replication costs far less than 2x on the wide
    # machine; the ordering constraint costs only a few percent.
    assert 1.15 < ft_mean < 1.55
    assert 1.10 < relaxed_mean <= ft_mean
    assert ft_mean - relaxed_mean < 0.10
    benchmark.extra_info["ft_geomean"] = round(ft_mean, 4)
    benchmark.extra_info["relaxed_geomean"] = round(relaxed_mean, 4)


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_kernel_overhead_shape(name, benchmark):
    """Per-kernel: protected runs slower than baseline but below 2x."""
    base, ft, relaxed, _, _ = benchmark.pedantic(
        measure, args=(name,), rounds=1, iterations=1
    )
    assert base < ft < 2 * base
    assert relaxed <= ft
    benchmark.extra_info["ft_ratio"] = round(ft / base, 4)
