"""Fault coverage: the paper's "perfect coverage" claim (Sections 1 & 4).

"By using the type checker we have designed, one achieves perfect fault
coverage relative to the fault model" -- i.e. for well-typed programs,
every single-event upset is either masked (identical output) or detected
by the hardware before corrupt data becomes observable.

This bench runs single-event-upset campaigns:

* **exhaustive** over the hand-written example programs (every dynamic
  step x every register and queue slot x every representative value), and
* **sampled** over the compiled benchmark kernels (every k-th step, a
  random subset of sites per step),

and reports the masked / detected split.  Coverage must be 100%: one
silent corruption would falsify the Fault Tolerance theorem.  As a control
it also injects into the deliberately broken cross-color-CSE build of
Section 2.2, which *does* corrupt silently.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.compiler import compile_source
from repro.injection import CampaignConfig, run_campaign
from repro.workloads import compile_kernel, kernel_source

from _bench_utils import emit_json, emit_table, format_row

#: Kernels sampled for the campaign (keep the bench a few minutes long).
CAMPAIGN_KERNELS = ("vpr", "jpeg", "gcc")

_SAMPLED = CampaignConfig(
    max_injection_steps=30,
    max_values_per_site=2,
    max_sites_per_step=8,
    seed=20260705,
)


def run_coverage_table() -> List[str]:
    widths = (12, 12, 10, 10, 10, 10)
    lines = [
        format_row(("program", "injections", "masked", "detected",
                    "silent", "coverage"), widths),
        "-" * 70,
    ]
    all_hold = True
    per_program = {}
    for name in CAMPAIGN_KERNELS:
        report = run_campaign(compile_kernel(name, "ft").program, _SAMPLED)
        lines.append(format_row(
            (name, report.injections, report.masked, report.detected,
             report.silent, report.coverage), widths,
        ))
        per_program[name] = {
            "injections": report.injections, "masked": report.masked,
            "detected": report.detected, "silent": report.silent,
            "coverage": report.coverage,
        }
        all_hold &= report.coverage == 1.0
    # Control: the Section 2.2 broken build leaks silent corruptions.
    broken = compile_source(kernel_source("vpr"), mode="ft",
                            cross_color_cse=True)
    report = run_campaign(broken.program, _SAMPLED)
    lines.append(format_row(
        ("vpr-CSE-bug", report.injections, report.masked, report.detected,
         report.silent, report.coverage), widths,
    ))
    lines.append("-" * 70)
    lines.append("paper: 100% coverage for well-typed code (Theorem 4)")
    lines.append(f"ours : {'100% on all typed kernels' if all_hold else 'VIOLATED'};"
                 f" broken CSE build leaks {report.silent} silent corruptions")
    if not all_hold:
        raise AssertionError("a well-typed kernel lost fault coverage")
    if report.silent == 0:
        raise AssertionError("the broken build should corrupt silently")
    per_program["vpr-CSE-bug"] = {
        "injections": report.injections, "masked": report.masked,
        "detected": report.detected, "silent": report.silent,
        "coverage": report.coverage,
    }
    emit_json("fault_coverage", {
        "config": {"max_injection_steps": _SAMPLED.max_injection_steps,
                   "max_sites_per_step": _SAMPLED.max_sites_per_step,
                   "max_values_per_site": _SAMPLED.max_values_per_site,
                   "seed": _SAMPLED.seed},
        "programs": per_program,
        "all_typed_kernels_perfect": all_hold,
    })
    return lines


def test_fault_coverage(benchmark):
    lines = benchmark.pedantic(run_coverage_table, rounds=1, iterations=1)
    emit_table("fault_coverage", lines)
