"""Observability overhead: what full instrumentation costs the hot path.

PR 5 added the unified observability layer (``repro.observe``): every
engine -- type checker, compiled execution backend, campaign engine,
journal/supervision layer -- records counters and histograms into the
process-local :class:`MetricsRegistry`.  Instrumentation is only safe to
leave **always on** if the hot path barely pays for it, so this bench
times the same sampled ``vpr`` campaign as ``bench_campaign_throughput``
twice, back-to-back:

* recording **off**: ``repro.observe.disabled()`` installs a
  :class:`NullRegistry`, turning every instrument call into a no-op
  method call (the cheapest "not instrumented" build we can make without
  patching call sites out);
* recording **on**: the default live registry, counters and histograms
  actually accumulating.

The contract asserted here: **live recording costs <= 3%** over the
disabled baseline, best paired ratio (see ``_paired_overhead`` -- the
single-CPU container's clock-speed drift makes non-adjacent timings
incomparable).  What makes the contract hold is instrumentation
granularity: the campaign engine records per *step* and per *chunk*,
never per faulty run, so a campaign with thousands of injections touches
the registry a few hundred times.

Both reports must be bit-identical -- metrics are observational, and a
registry that changed a single record would be a correctness bug, not an
overhead question.
"""

from __future__ import annotations

import time
from typing import List

from repro import observe
from repro.injection import CampaignConfig, run_campaign
from repro.injection.chaos import report_fingerprint
from repro.workloads import compile_kernel

from _bench_utils import emit_json, emit_table, format_row

#: Mirrors bench_campaign_throughput / bench_resilience so rows are
#: comparable across the benchmark suite.
_CONFIG = CampaignConfig(
    max_injection_steps=30,
    max_values_per_site=2,
    max_sites_per_step=8,
    seed=20260705,
)

_MAX_OVERHEAD = 0.03


def _paired_overhead(baseline_runner, treated_runner, reps: int):
    """Minimum of per-pair time ratios, measured back-to-back.

    Same idiom as bench_resilience: this single-CPU container drifts
    between fast and throttled regimes by ~1.7x over seconds, so
    best-of times taken in different windows are incomparable.  Adjacent
    pairs are regime-matched; an inherent cost above budget would show
    in *every* pair, so the minimum ratio isolates it from the drift.
    """
    baseline_runner(), treated_runner()  # warm up
    best_ratio = float("inf")
    baseline_best = treated_best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        baseline_report = baseline_runner()
        baseline_time = time.perf_counter() - start
        start = time.perf_counter()
        treated_report = treated_runner()
        treated_time = time.perf_counter() - start
        best_ratio = min(best_ratio, treated_time / baseline_time)
        baseline_best = min(baseline_best, baseline_time)
        treated_best = min(treated_best, treated_time)
    return (baseline_report, baseline_best, treated_report, treated_best,
            best_ratio)


def _run_disabled(program):
    with observe.disabled():
        return run_campaign(program, _CONFIG, jobs=1)


def _run_instrumented(program):
    # A fresh registry per run keeps accumulation realistic (dict growth,
    # label interning) instead of amortized across reps.
    previous = observe.set_registry(observe.MetricsRegistry())
    try:
        return run_campaign(program, _CONFIG, jobs=1)
    finally:
        observe.set_registry(previous)


def run_observability_table() -> List[str]:
    program = compile_kernel("vpr", "ft").program

    (plain_report, plain_time, metered_report, metered_time,
     ratio) = _paired_overhead(
        lambda: _run_disabled(program),
        lambda: _run_instrumented(program),
        reps=7)

    # Bit-identical first: overhead numbers are meaningless otherwise.
    if report_fingerprint(plain_report) != report_fingerprint(metered_report):
        raise AssertionError(
            "instrumented campaign diverged from the uninstrumented report")
    if plain_report.latency_buckets != metered_report.latency_buckets:
        raise AssertionError(
            "latency buckets diverged between instrumented/plain runs")

    plain_rate = plain_report.injections / plain_time
    metered_rate = metered_report.injections / metered_time
    overhead = ratio - 1.0

    # How much did instrumentation actually record?  (Sanity: a no-op
    # treatment would make the <=3% claim vacuous.)
    registry = observe.MetricsRegistry()
    previous = observe.set_registry(registry)
    try:
        run_campaign(program, _CONFIG, jobs=1)
    finally:
        observe.set_registry(previous)
    snapshot = registry.as_dict()
    counter_series = len(snapshot["counters"])
    histogram_series = len(snapshot["histograms"])
    recorded_events = sum(c["value"] for c in snapshot["counters"])
    if recorded_events == 0:
        raise AssertionError("instrumented run recorded nothing")

    widths = (26, 12, 10, 12, 10)
    lines = [
        format_row(("configuration", "injections", "time_s", "inj_per_s",
                    "vs_off"), widths),
        "-" * 76,
        format_row(("metrics off (null)", plain_report.injections,
                    plain_time, plain_rate, 1.0), widths),
        format_row(("metrics on (live)", metered_report.injections,
                    metered_time, metered_rate,
                    metered_rate / plain_rate), widths),
        "-" * 76,
        f"recorded: {counter_series} counter series, "
        f"{histogram_series} histogram series, "
        f"{recorded_events} counted events",
        f"contract: live recording overhead <= {_MAX_OVERHEAD:.0%} "
        f"(got {overhead:+.1%}, best paired ratio); reports bit-identical",
    ]
    if overhead > _MAX_OVERHEAD:
        raise AssertionError(
            f"observability overhead {overhead:.1%} exceeds the "
            f"{_MAX_OVERHEAD:.0%} budget "
            f"({plain_time * 1000:.1f}ms off vs "
            f"{metered_time * 1000:.1f}ms on, best-of times)")
    emit_json("observability", {
        "config": {
            "kernel": "vpr", "mode": "ft",
            "max_injection_steps": _CONFIG.max_injection_steps,
            "max_sites_per_step": _CONFIG.max_sites_per_step,
            "max_values_per_site": _CONFIG.max_values_per_site,
            "seed": _CONFIG.seed,
        },
        "injections": plain_report.injections,
        "throughput_inj_per_s": {
            "metrics_off": plain_rate,
            "metrics_on": metered_rate,
        },
        "recorded": {
            "counter_series": counter_series,
            "histogram_series": histogram_series,
            "counted_events": recorded_events,
        },
        "overhead_fraction": overhead,
        "overhead_budget": _MAX_OVERHEAD,
        "bit_identical": True,
    })
    return lines


def test_observability_overhead(benchmark):
    lines = benchmark.pedantic(run_observability_table, rounds=1,
                               iterations=1)
    emit_table("observability", lines)
