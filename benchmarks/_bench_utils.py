"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one experiment from the paper (see the
experiment index in DESIGN.md) and prints its table.  Tables are written
both to the real terminal (bypassing pytest's capture, so they appear in
``pytest benchmarks/ --benchmark-only`` output) and to
``benchmarks/results/<name>.txt``; machine-readable figures go to
``benchmarks/results/BENCH_<name>.json`` via :func:`emit_json`, which is
what CI archives as artifacts.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
from typing import Dict, Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def host_metadata() -> Dict[str, object]:
    """The host facts needed to interpret a stored throughput number:
    interpreter, platform, CPU count, and the numpy the vector backend
    ran on (``None`` when the ``[vector]`` extra is absent)."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy_version": numpy_version,
    }


def geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def emit_table(name: str, lines: Iterable[str]) -> None:
    """Print a result table to the terminal and save it under results/."""
    text = "\n".join(lines)
    banner = f"\n===== {name} =====\n{text}\n"
    # sys.__stdout__ bypasses pytest's capture so tables are visible in
    # normal benchmark runs.
    print(banner, file=sys.__stdout__, flush=True)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def emit_json(name: str, data: Dict[str, object]) -> str:
    """Save a benchmark's machine-readable results.

    Writes ``benchmarks/results/BENCH_<name>.json`` and returns the path.
    ``data`` should carry whatever the experiment measured -- throughputs,
    speedups, cycle counts -- plus the configuration that produced them,
    so a stored artifact is interpretable without the table next to it.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    payload = {"bench": name, "host": host_metadata(), **data}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_row(columns: Sequence[object], widths: Sequence[int]) -> str:
    cells = []
    for value, width in zip(columns, widths):
        if isinstance(value, float):
            cells.append(f"{value:>{width}.3f}")
        else:
            cells.append(f"{value:>{width}}" if not isinstance(value, str)
                         else f"{value:<{width}}")
    return "  ".join(cells)
