"""Tests for the masked-region addressing extension."""

import pytest

from repro.core import Color, Load, Store
from repro.statics import BinExpr, IntConst, KindContext, KIND_INT, add, const, var
from repro.types import INT, RefType, RegType, TypeCheckError, check_instruction
from repro.types.region import region_bounds, region_pointee
from tests.helpers import entry_context

INT_REF = RefType(INT)
G, B = Color.GREEN, Color.BLUE
DELTA = KindContext({"i": KIND_INT})


def masked(base, mask, index=var("i")):
    return add(const(base), BinExpr("and", index, const(mask)))


class TestRegionBounds:
    def test_constant_address(self):
        assert region_bounds(const(256)) == range(256, 257)

    def test_masked_shape(self):
        assert region_bounds(masked(100, 7)) == range(100, 108)

    def test_mask_zero(self):
        assert region_bounds(masked(100, 0)) == range(100, 101)

    def test_mask_on_left_operand(self):
        expr = add(const(64), BinExpr("and", const(15), var("i")))
        assert region_bounds(expr) == range(64, 80)

    def test_non_power_of_two_mask_rejected(self):
        assert region_bounds(masked(100, 6)) is None

    def test_unmasked_variable_rejected(self):
        assert region_bounds(add(const(100), var("i"))) is None

    def test_negative_mask_rejected(self):
        assert region_bounds(masked(100, -1)) is None

    def test_nested_index_expression(self):
        index = add(var("i"), BinExpr("mul", var("i"), const(4)))
        assert region_bounds(masked(32, 31, index)) == range(32, 64)


class TestRegionPointee:
    PSI = {address: INT_REF for address in range(100, 108)}

    def test_uniform_region(self):
        assert region_pointee(self.PSI, masked(100, 7), DELTA) == INT

    def test_partial_region_rejected(self):
        psi = {address: INT_REF for address in range(100, 104)}
        assert region_pointee(psi, masked(100, 7), DELTA) is None

    def test_non_reference_cell_rejected(self):
        psi = dict(self.PSI)
        psi[103] = INT  # not a ref
        assert region_pointee(psi, masked(100, 7), DELTA) is None

    def test_mixed_pointees_rejected(self):
        psi = dict(self.PSI)
        psi[103] = RefType(INT_REF)
        assert region_pointee(psi, masked(100, 7), DELTA) is None


class TestRegionInInstructionTyping:
    PSI = {address: INT_REF for address in range(100, 108)}

    def _ctx(self, color):
        return entry_context(overrides={
            "r1": RegType(color, INT, masked(100, 7)),
            "r2": RegType(color, INT, var("i")),
        })

    def test_load_through_masked_address(self):
        post = check_instruction(self.PSI, self._ctx(G), Load(G, "r3", "r1"))
        result = post.gamma.get("r3")
        assert result.color is G
        assert result.basic == INT

    def test_store_through_masked_address(self):
        post = check_instruction(self.PSI, self._ctx(G), Store(G, "r1", "r2"))
        assert len(post.queue) == 1

    def test_unbounded_address_still_rejected(self):
        ctx = entry_context(overrides={
            "r1": RegType(G, INT, add(const(100), var("i"))),
            "r2": RegType(G, INT, var("i")),
        })
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Load(G, "r3", "r1"))

    def test_region_outside_psi_rejected(self):
        ctx = entry_context(overrides={
            "r1": RegType(G, INT, masked(200, 7)),
        })
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Load(G, "r3", "r1"))
