"""Tests for value typing (Figure 6), subtyping, and type syntax."""

import pytest

from repro.core import Color, blue, green
from repro.statics import (
    KIND_INT,
    KIND_MEM,
    IntConst,
    KindContext,
    Subst,
    Var,
    add,
    const,
    var,
)
from repro.types import (
    INT,
    CodeType,
    CondType,
    IntType,
    RefType,
    RegType,
    TypeCheckError,
    check_code_type_closed,
    check_subtype,
    check_value,
    coerce_to_int,
    context_equal,
    is_subtype,
    reg_assign_equal,
    value_ok,
)
from tests.helpers import entry_context

DELTA = KindContext({"x": KIND_INT, "m": KIND_MEM})
INT_REF = RefType(INT)


class TestValueTyping:
    def test_val_t_constant(self):
        assert value_ok({}, DELTA, None, green(5), RegType(Color.GREEN, INT, const(5)))

    def test_val_t_symbolic_equality(self):
        ty = RegType(Color.BLUE, INT, add(const(2), const(3)))
        assert value_ok({}, DELTA, None, blue(5), ty)

    def test_val_t_rejects_wrong_value(self):
        assert not value_ok({}, DELTA, None, green(6),
                            RegType(Color.GREEN, INT, const(5)))

    def test_val_t_rejects_wrong_color(self):
        assert not value_ok({}, DELTA, None, blue(5),
                            RegType(Color.GREEN, INT, const(5)))

    def test_val_t_open_expression_rejected(self):
        # x might not equal 5, so the judgment must not hold.
        assert not value_ok({}, DELTA, None, green(5),
                            RegType(Color.GREEN, INT, var("x")))

    def test_base_t_reference(self):
        psi = {256: INT_REF}
        ty = RegType(Color.GREEN, INT_REF, const(256))
        assert value_ok(psi, DELTA, None, green(256), ty)

    def test_base_t_rejects_untyped_address(self):
        ty = RegType(Color.GREEN, INT_REF, const(256))
        assert not value_ok({}, DELTA, None, green(256), ty)

    def test_cond_t_zero_guard_uses_inner(self):
        ty = CondType(const(0), RegType(Color.GREEN, INT, const(7)))
        assert value_ok({}, DELTA, None, green(7), ty)
        assert not value_ok({}, DELTA, None, green(0), ty)

    def test_cond_t_nonzero_guard_requires_zero(self):
        ty = CondType(const(3), RegType(Color.GREEN, INT, const(7)))
        assert value_ok({}, DELTA, None, green(0), ty)
        assert not value_ok({}, DELTA, None, green(7), ty)

    def test_cond_t_undecidable_guard_rejected(self):
        ty = CondType(var("x"), RegType(Color.GREEN, INT, const(7)))
        assert not value_ok({}, DELTA, None, green(0), ty)

    def test_val_zap_t_accepts_anything_of_zapped_color(self):
        ty = RegType(Color.GREEN, INT_REF, const(5))
        assert value_ok({}, DELTA, Color.GREEN, green(12345), ty)

    def test_val_zap_t_other_color_still_strict(self):
        ty = RegType(Color.BLUE, INT, const(5))
        assert not value_ok({}, DELTA, Color.GREEN, blue(6), ty)
        assert value_ok({}, DELTA, Color.GREEN, blue(5), ty)

    def test_val_zap_cond(self):
        ty = CondType(var("x"), RegType(Color.BLUE, INT, const(7)))
        assert value_ok({}, DELTA, Color.BLUE, blue(999), ty)

    def test_check_value_raises_with_message(self):
        with pytest.raises(TypeCheckError):
            check_value({}, DELTA, None, green(6),
                        RegType(Color.GREEN, INT, const(5)))


class TestSubtyping:
    def test_reflexive(self):
        ty = RegType(Color.GREEN, INT, add(var("x"), const(1)))
        check_subtype(ty, RegType(Color.GREEN, INT, add(const(1), var("x"))), DELTA)

    def test_forget_reference_to_int(self):
        sub = RegType(Color.GREEN, INT_REF, const(256))
        sup = RegType(Color.GREEN, INT, const(256))
        assert is_subtype(sub, sup, DELTA)

    def test_forget_code_to_int(self):
        code = CodeType(entry_context())
        sub = RegType(Color.BLUE, code, const(1))
        sup = RegType(Color.BLUE, INT, const(1))
        assert is_subtype(sub, sup, DELTA)

    def test_no_int_to_reference(self):
        sub = RegType(Color.GREEN, INT, const(256))
        sup = RegType(Color.GREEN, INT_REF, const(256))
        assert not is_subtype(sub, sup, DELTA)

    def test_color_must_match(self):
        sub = RegType(Color.GREEN, INT, const(1))
        sup = RegType(Color.BLUE, INT, const(1))
        assert not is_subtype(sub, sup, DELTA)

    def test_expressions_must_be_provably_equal(self):
        sub = RegType(Color.GREEN, INT, var("x"))
        sup = RegType(Color.GREEN, INT, const(1))
        assert not is_subtype(sub, sup, DELTA)

    def test_coerce_to_int(self):
        ty = coerce_to_int(RegType(Color.GREEN, INT_REF, const(9)), "r1", DELTA)
        assert ty == RegType(Color.GREEN, INT, const(9))

    def test_coerce_conditional_fails(self):
        cond = CondType(const(0), RegType(Color.GREEN, INT, const(1)))
        with pytest.raises(TypeCheckError):
            coerce_to_int(cond, "d", DELTA)


class TestTypeSyntax:
    def test_reg_assign_equal_modulo_expressions(self):
        a = RegType(Color.GREEN, INT, add(var("x"), var("x")))
        b = RegType(Color.GREEN, INT, BinMul2())
        assert reg_assign_equal(a, b, DELTA)

    def test_context_equal_self(self):
        ctx = entry_context()
        assert context_equal(ctx, ctx)

    def test_context_equal_different_entry(self):
        assert not context_equal(entry_context(entry=1), entry_context(entry=2))

    def test_closed_code_type_accepted(self):
        check_code_type_closed(CodeType(entry_context()))

    def test_open_code_type_rejected(self):
        ctx = entry_context()
        open_ctx = ctx.with_mem(Var("unbound"))
        with pytest.raises(TypeCheckError):
            check_code_type_closed(CodeType(open_ctx))

    def test_gamma_requires_special_registers(self):
        from repro.types import RegFileType

        with pytest.raises(TypeCheckError):
            RegFileType({"r1": RegType(Color.GREEN, INT, const(0))})

    def test_gamma_bump_pcs(self):
        gamma = entry_context(entry=5).gamma.bump_pcs()
        from repro.core.registers import PC_B, PC_G

        assert gamma.get(PC_G).expr == IntConst(6)
        assert gamma.get(PC_B).expr == IntConst(6)

    def test_apply_subst_stops_at_code_types(self):
        code = CodeType(entry_context(mem_var="x"))  # closed: binds x itself
        ty = RegType(Color.GREEN, code, var("x"))
        out = __import__("repro.types.syntax", fromlist=["subst_reg_assign"]) \
            .subst_reg_assign(Subst({"x": const(3)}), ty)
        assert out.expr == const(3)
        assert out.basic is code  # inner context untouched


def BinMul2():
    from repro.statics import mul

    return mul(const(2), var("x"))
