"""Tests for the ``talft`` command-line interface."""

import os

import pytest

from repro.cli import main

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples",
                        "programs")
STORE_TAL = os.path.join(EXAMPLES, "store.tal")
COUNTDOWN_TAL = os.path.join(EXAMPLES, "countdown.tal")
DOT_MWL = os.path.join(EXAMPLES, "dotproduct.mwl")


class TestCheck:
    def test_check_ok(self, capsys):
        assert main(["check", STORE_TAL]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "fault tolerant" in out

    def test_check_countdown(self, capsys):
        assert main(["check", COUNTDOWN_TAL]) == 0

    def test_check_ill_typed(self, tmp_path, capsys):
        bad = tmp_path / "bad.tal"
        bad.write_text("""
.gprs 4
.data
  word 100 = 0
.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 100
  mov r2, G 5
  stG r1, r2
  stB r1, r2
  halt
""")
        assert main(["check", str(bad)]) == 1
        assert "type error" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.tal"]) == 2


class TestRun:
    def test_run_fault_free(self, capsys):
        assert main(["run", STORE_TAL]) == 0
        out = capsys.readouterr().out
        assert "halted" in out
        assert "M[256] <- 5" in out

    def test_run_with_fault(self, capsys):
        assert main(["run", STORE_TAL, "--fault", "r1=666@2"]) == 0
        out = capsys.readouterr().out
        assert "fault-detected" in out
        assert "M[" not in out  # nothing observable escaped

    def test_run_countdown_outputs(self, capsys):
        assert main(["run", COUNTDOWN_TAL]) == 0
        out = capsys.readouterr().out
        assert out.count("M[256]") == 3

    def test_bad_fault_spec(self):
        with pytest.raises(SystemExit):
            main(["run", STORE_TAL, "--fault", "gibberish"])


class TestCompile:
    def test_compile_ft(self, capsys):
        assert main(["compile", DOT_MWL]) == 0
        out = capsys.readouterr().out
        assert "ft build" in out
        assert "type check: OK" in out

    def test_compile_baseline_listing(self, capsys):
        assert main(["compile", DOT_MWL, "--mode", "baseline",
                     "--listing"]) == 0
        out = capsys.readouterr().out
        assert "baseline build" in out
        assert ".code" in out

    def test_listing_with_preconditions(self, capsys):
        assert main(["compile", DOT_MWL, "--listing",
                     "--preconditions"]) == 0
        assert ".pre" in capsys.readouterr().out


class TestTimeAndCampaign:
    def test_time(self, capsys):
        assert main(["time", DOT_MWL]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "TAL-FT" in out and "x)" in out

    def test_campaign(self, capsys):
        assert main(["campaign", DOT_MWL, "--samples", "8"]) == 0
        out = capsys.readouterr().out
        assert "coverage: 100" in out


class TestCampaignValidation:
    """Nonsense knob values must die with exit code 2 and a friendly
    message, not a traceback from deep inside the campaign engine."""

    @pytest.mark.parametrize("flag,value", [
        ("--samples", "0"),
        ("--samples", "-3"),
        ("--jobs", "0"),
        ("--checkpoint-interval", "0"),
        ("--stride", "0"),
        ("--max-retries", "-1"),
        ("--chunk-timeout", "0"),
        ("--chunk-timeout", "-0.5"),
        ("--shards", "0"),
        ("--shards", "-2"),
        ("--shards", "four"),
    ])
    def test_bad_values_exit_2(self, flag, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", DOT_MWL, flag, value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert flag in err and "must be" in err

    def test_resume_requires_journal(self, capsys):
        assert main(["campaign", DOT_MWL, "--samples", "4",
                     "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_workers_requires_shards(self, capsys):
        assert main(["campaign", DOT_MWL, "--samples", "4",
                     "--workers", "127.0.0.1:7070"]) == 2
        assert "--shards" in capsys.readouterr().err

    @pytest.mark.parametrize("addresses", [
        "not-an-address", "host:99999", "host:port", ",,,",
        "1:2:3",        # unbracketed multi-colon: rejected, not mis-split
        "::1:7070",     # bare IPv6 literal needs [::1]:7070
        "[::1]7070",    # bracket without the :PORT separator
    ])
    def test_bad_worker_addresses_exit_2(self, addresses, capsys):
        assert main(["campaign", DOT_MWL, "--samples", "4", "--shards", "2",
                     "--workers", addresses]) == 2
        err = capsys.readouterr().err
        assert "--workers" in err

    def test_unreachable_worker_exits_1_with_message(self, capsys):
        # A closed loopback port parses fine but refuses the dial; the
        # coordinator must surface a friendly error, not a traceback.
        import socket

        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()  # nothing listens there now
        assert main(["campaign", DOT_MWL, "--samples", "4", "--shards", "2",
                     "--workers", f"127.0.0.1:{port}"]) == 1
        err = capsys.readouterr().err
        assert "cannot reach shard worker" in err

    def test_authkey_file_requires_workers(self, capsys, tmp_path):
        keyfile = tmp_path / "fleet.key"
        keyfile.write_text("sekrit\n")
        assert main(["campaign", DOT_MWL, "--samples", "4", "--shards", "2",
                     "--authkey-file", str(keyfile)]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_empty_authkey_file_exit_2(self, capsys, tmp_path):
        keyfile = tmp_path / "fleet.key"
        keyfile.write_text("")
        assert main(["campaign", DOT_MWL, "--samples", "4", "--shards", "2",
                     "--workers", "127.0.0.1:7070",
                     "--authkey-file", str(keyfile)]) == 2
        assert "empty" in capsys.readouterr().err

    def test_shard_worker_public_listen_without_key_exit_2(
            self, capsys, monkeypatch):
        from repro.service.protocol import AUTHKEY_ENV

        monkeypatch.delenv(AUTHKEY_ENV, raising=False)
        assert main(["shard-worker", "--listen", "0.0.0.0:0"]) == 2
        err = capsys.readouterr().err
        assert "non-loopback" in err and AUTHKEY_ENV in err

    @pytest.mark.parametrize("value", ["-1", "65536", "http"])
    def test_bad_serve_port_exit_2(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--serve-port", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--serve-port" in err and "must be" in err

    def test_bad_shard_worker_connect_exit_2(self, capsys):
        assert main(["shard-worker", "--connect", "nowhere"]) == 2
        assert "--connect" in capsys.readouterr().err


class TestCampaignJournal:
    def test_journal_then_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "dot.journal")
        assert main(["campaign", DOT_MWL, "--samples", "6",
                     "--journal", journal]) == 0
        first = capsys.readouterr().out
        assert "journaled_steps" in first
        assert main(["campaign", DOT_MWL, "--samples", "6",
                     "--journal", journal, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed_steps" in second
        # The resumed report reprints the identical campaign summary.
        pick = [line for line in first.splitlines()
                if "resilience" not in line]
        repick = [line for line in second.splitlines()
                  if "resilience" not in line]
        assert pick == repick

    def test_supervision_knobs_accepted(self, capsys):
        assert main(["campaign", DOT_MWL, "--samples", "4", "--jobs", "2",
                     "--chunk-timeout", "30", "--max-retries", "1"]) == 0
        assert "coverage: 100" in capsys.readouterr().out


class TestShardedCampaignCli:
    def test_sharded_matches_single_process_output(self, capsys):
        assert main(["campaign", DOT_MWL, "--samples", "6",
                     "--seed", "7"]) == 0
        single = capsys.readouterr().out.splitlines()[0]
        assert main(["campaign", DOT_MWL, "--samples", "6", "--seed", "7",
                     "--shards", "3"]) == 0
        sharded = capsys.readouterr().out.splitlines()[0]
        assert sharded == single

    def test_journal_merge_then_plain_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "dot.journal")
        assert main(["campaign", DOT_MWL, "--samples", "6", "--seed", "7",
                     "--shards", "3", "--journal", journal]) == 0
        sharded = capsys.readouterr().out.splitlines()[0]
        import glob

        shard_files = sorted(glob.glob(journal + ".shard-*"))
        assert len(shard_files) == 3
        merged = str(tmp_path / "merged.journal")
        assert main(["journal", "merge", "-o", merged] + shard_files) == 0
        assert "merged 3 journal(s)" in capsys.readouterr().out
        # A plain single-process resume replays the combined journal and
        # reconstructs the identical report without re-executing anything.
        assert main(["campaign", DOT_MWL, "--samples", "6", "--seed", "7",
                     "--journal", merged, "--resume"]) == 0
        resumed = capsys.readouterr().out.splitlines()[0]
        assert resumed == sharded

    def test_journal_merge_missing_input(self, tmp_path, capsys):
        merged = str(tmp_path / "out.journal")
        assert main(["journal", "merge", "-o", merged,
                     str(tmp_path / "absent.journal")]) == 1
        assert "no valid header" in capsys.readouterr().err


class TestChaos:
    def test_chaos_journal_scenarios(self, capsys):
        assert main(["chaos", DOT_MWL, "--samples", "6",
                     "--scenarios", "truncate-journal,recovery"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "all scenario runs passed" in out

    def test_chaos_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["chaos", DOT_MWL, "--scenarios", "bit-rot"])
