"""Tests for the MWL compiler: lowering, passes, regalloc, both backends.

The central property is *differential*: for every program, the unprotected
baseline, the fault-tolerant build and the reference interpreter must
produce exactly the same observable write sequence -- and the FT build
must type-check.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    CompiledProgram,
    TBranchZero,
    TGoto,
    VReg,
    allocate,
    compile_source,
    compute_layout,
    fold_constants,
    lower_source,
    remove_empty_blocks,
)
from repro.compiler.ir import Block, CFG, IBin, IConst, THalt
from repro.compiler.regalloc import LiveRange, linear_scan
from repro.core import CompileError, Outcome, run_to_completion
from repro.lang import check_source, interpret, parse_source
from repro.types import TypeCheckError


def reference_writes(source):
    ast = parse_source(source)
    check_source(ast)
    return interpret(ast).writes


def machine_writes(compiled: CompiledProgram):
    trace = run_to_completion(compiled.program.boot(), max_steps=2_000_000)
    assert trace.outcome is Outcome.HALTED, trace.outcome
    return [
        compiled.lowered.layout.describe(address) + (value,)
        for address, value in trace.outputs
    ]


def assert_differential(source):
    expected = [(a, i, v) for a, i, v in reference_writes(source)]
    baseline = compile_source(source, mode="baseline")
    assert machine_writes(baseline) == expected
    protected = compile_source(source, mode="ft")
    assert machine_writes(protected) == expected
    protected.program.check()  # the FT build always type-checks
    return baseline, protected


PROGRAMS = {
    "straightline": """
        array out[4];
        out[0] = 1 + 2 * 3;
        out[1] = (5 - 8) * -1;
    """,
    "globals": """
        var acc = 10;
        array out[2];
        acc = acc + 32;
        out[0] = acc;
    """,
    "if_else": """
        array out[4];
        var x = 5;
        if (x > 3) { out[0] = 1; } else { out[0] = 2; }
        if (x < 3) { out[1] = 1; } else { out[1] = 2; }
        if (x == 5) { out[2] = 7; }
    """,
    "while_loop": """
        array out[8];
        var i = 0;
        while (i < 5) { out[i] = i * i; i = i + 1; }
    """,
    "nested_loops": """
        array out[16];
        var i = 0;
        while (i < 3) {
            var j = 0;
            while (j < 3) { out[i * 4 + j] = i * 10 + j; j = j + 1; }
            i = i + 1;
        }
    """,
    "array_read": """
        array src[4] = {3, 1, 4, 1};
        array dst[4];
        var i = 0;
        while (i < 4) { dst[i] = src[i] * 2 + 1; i = i + 1; }
    """,
    "functions": """
        array out[4];
        fn square(x) { return x * x; }
        fn cube(x) { return square(x) * x; }
        out[0] = square(5);
        out[1] = cube(3);
    """,
    "masking": """
        array a[3];
        a[7] = 9;
        a[2] = a[6] + 1;
    """,
    "bitops": """
        array out[8];
        out[0] = 12 & 10;
        out[1] = 12 | 10;
        out[2] = 12 ^ 10;
        out[3] = 3 << 4;
        out[4] = -64 >> 3;
        out[5] = (1 && 2) + (0 || 7) * 2;
        out[6] = !5 + !0;
    """,
    "accumulate": """
        var sum = 0;
        array data[8] = {5, 2, 8, 1, 9, 3, 7, 4};
        array out[1];
        var i = 0;
        while (i < 8) { sum = sum + data[i]; i = i + 1; }
        out[0] = sum;
    """,
    "conditional_in_loop": """
        array out[8];
        var i = 0;
        var evens = 0;
        while (i < 8) {
            if ((i & 1) == 0) { evens = evens + 1; out[i] = evens; }
            else { out[i] = 0 - i; }
            i = i + 1;
        }
    """,
}


class TestDifferential:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_baseline_and_ft_match_interpreter(self, name):
        assert_differential(PROGRAMS[name])

    def test_ft_roughly_doubles_code_size(self):
        baseline = compile_source(PROGRAMS["while_loop"], mode="baseline")
        protected = compile_source(PROGRAMS["while_loop"], mode="ft")
        ratio = protected.program.size / baseline.program.size
        assert 1.5 < ratio < 2.6


class TestLowering:
    def test_cfg_has_entry_first(self):
        lowered = lower_source(PROGRAMS["while_loop"])
        assert lowered.cfg.order[0] == lowered.cfg.entry

    def test_loop_produces_branch(self):
        lowered = lower_source(PROGRAMS["while_loop"])
        branches = [
            block for block in lowered.cfg.iter_blocks()
            if isinstance(block.terminator, TBranchZero)
        ]
        assert branches

    def test_every_block_terminated(self):
        lowered = lower_source(PROGRAMS["nested_loops"])
        for block in lowered.cfg.iter_blocks():
            assert block.terminator is not None

    def test_layout_masks(self):
        ast = parse_source("array a[3]; array b[8]; a[0] = 1;")
        check_source(ast)
        layout = compute_layout(ast)
        assert layout.slot("a").storage == 4
        assert layout.slot("a").mask == 3
        assert layout.slot("b").base == layout.slot("a").base + 4

    def test_describe_roundtrip(self):
        ast = parse_source("array a[4]; a[0] = 1;")
        check_source(ast)
        layout = compute_layout(ast)
        address = layout.address_of("a", 2)
        assert layout.describe(address) == ("a", 2)


class TestPasses:
    def test_remove_empty_blocks(self):
        cfg = CFG(entry="a")
        cfg.add(Block("a", [], TGoto("b")))
        cfg.add(Block("b", [IConst(VReg(1), 5)], THalt()))
        remove_empty_blocks(cfg)
        assert cfg.entry == "b"
        assert list(cfg.order) == ["b"]

    def test_empty_self_loop_kept(self):
        cfg = CFG(entry="a")
        cfg.add(Block("a", [], TGoto("a")))
        remove_empty_blocks(cfg)
        assert "a" in cfg.blocks

    def test_fold_constants(self):
        cfg = CFG(entry="a")
        block = Block("a", [
            IConst(VReg(1), 6),
            IConst(VReg(2), 7),
            IBin("mul", VReg(3), VReg(1), VReg(2)),
        ], THalt())
        cfg.add(block)
        folds = fold_constants(cfg)
        assert folds == 1
        assert block.ops[2] == IConst(VReg(3), 42)

    def test_fold_constants_preserves_semantics(self):
        source = PROGRAMS["bitops"]
        unopt = compile_source(source, mode="ft", optimize=False)
        opt = compile_source(source, mode="ft", optimize=True)
        assert machine_writes(unopt) == machine_writes(opt)
        assert opt.program.size <= unopt.program.size


class TestRegalloc:
    def test_non_overlapping_ranges_share_registers(self):
        ranges = [
            LiveRange(VReg(1), 0, 5),
            LiveRange(VReg(2), 6, 9),
        ]
        assignment = linear_scan(ranges, ["r1"])
        assert assignment[VReg(1)] == assignment[VReg(2)] == "r1"

    def test_overlapping_ranges_get_distinct_registers(self):
        ranges = [
            LiveRange(VReg(1), 0, 5),
            LiveRange(VReg(2), 3, 9),
        ]
        assignment = linear_scan(ranges, ["r1", "r2"])
        assert assignment[VReg(1)] != assignment[VReg(2)]

    def test_pressure_error(self):
        ranges = [LiveRange(VReg(i), 0, 10) for i in range(1, 4)]
        with pytest.raises(CompileError):
            linear_scan(ranges, ["r1", "r2"])

    def test_loop_carried_value_allocated_consistently(self):
        lowered = lower_source(PROGRAMS["accumulate"])
        assignment = allocate(lowered.cfg, [f"r{i}" for i in range(1, 32)])
        # Every vreg in the CFG is assigned, and assignments are injective
        # among simultaneously live values (checked indirectly by the
        # differential tests; here: everything got a register).
        from repro.compiler.ir import op_def, op_uses, terminator_uses

        for block in lowered.cfg.iter_blocks():
            for op in block.ops:
                for vreg in op_uses(op):
                    assert vreg in assignment
                if op_def(op) is not None:
                    assert op_def(op) in assignment
            for vreg in terminator_uses(block.terminator):
                assert vreg in assignment


class TestFTBackendTyping:
    @pytest.mark.parametrize("name", ["while_loop", "array_read",
                                      "conditional_in_loop", "functions"])
    def test_ft_output_typechecks(self, name):
        compiled = compile_source(PROGRAMS[name], mode="ft")
        compiled.program.check()

    def test_baseline_rejected_by_checker(self):
        compiled = compile_source(PROGRAMS["while_loop"], mode="baseline")
        with pytest.raises(TypeCheckError):
            compiled.program.check()

    def test_cross_color_cse_rejected(self):
        compiled = compile_source(PROGRAMS["while_loop"], mode="ft",
                                  cross_color_cse=True)
        with pytest.raises(TypeCheckError):
            compiled.program.check()

    def test_cross_color_cse_still_runs_fault_free(self):
        # The broken build is functionally fine without faults -- exactly
        # why testing alone cannot catch it.
        expected = [(a, i, v) for a, i, v in
                    reference_writes(PROGRAMS["while_loop"])]
        compiled = compile_source(PROGRAMS["while_loop"], mode="ft",
                                  cross_color_cse=True)
        assert machine_writes(compiled) == expected

    def test_register_pools_are_disjoint(self):
        compiled = compile_source(PROGRAMS["nested_loops"], mode="ft",
                                  num_gprs=64)
        from repro.core import Color, Store
        from repro.core.registers import gpr_index

        for instruction in compiled.program.code.values():
            if isinstance(instruction, Store):
                index_rd = gpr_index(instruction.rd)
                index_rs = gpr_index(instruction.rs)
                if instruction.color is Color.GREEN:
                    assert index_rd <= 32 and index_rs <= 32
                else:
                    assert index_rd > 32 and index_rs > 32


class TestCompilerErrors:
    def test_unknown_mode(self):
        with pytest.raises(CompileError):
            compile_source("var x = 1;", mode="quantum")

    def test_cse_on_baseline_rejected(self):
        with pytest.raises(CompileError):
            compile_source("var x = 1;", mode="baseline",
                           cross_color_cse=True)


# ---------------------------------------------------------------------------
# Property-based differential testing on generated programs
# ---------------------------------------------------------------------------


@st.composite
def small_programs(draw):
    """Random single-loop programs over one output array."""
    size = draw(st.integers(2, 8))
    bound = draw(st.integers(1, 6))
    op1 = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    op2 = draw(st.sampled_from(["+", "-", "*"]))
    constant = draw(st.integers(-7, 7))
    seed = draw(st.integers(0, 15))
    use_if = draw(st.booleans())
    body = f"out[i] = (i {op1} {constant}) {op2} acc;"
    if use_if:
        body = (
            f"if ((i & 1) == 0) {{ {body} }} "
            f"else {{ out[i] = acc - i; }}"
        )
    return f"""
        array out[{size}];
        var acc = {seed};
        var i = 0;
        while (i < {bound}) {{
            {body}
            acc = acc + 1;
            i = i + 1;
        }}
    """


@settings(max_examples=25, deadline=None)
@given(source=small_programs())
def test_generated_programs_differential(source):
    expected = [(a, i, v) for a, i, v in reference_writes(source)]
    for mode in ("baseline", "ft"):
        compiled = compile_source(source, mode=mode)
        assert machine_writes(compiled) == expected
    compile_source(source, mode="ft").program.check()


class TestBlockScoping:
    """Regression tests for arm-/body-local declarations (found by the
    'go' kernel: a var declared in one if-arm broke the join merge)."""

    def test_var_declared_in_one_arm(self):
        assert_differential("""
        array out[4];
        var i = 0;
        while (i < 4) {
            if ((i & 1) == 0) {
                var w = i * 10;
                out[i] = w;
            } else {
                out[i] = 0 - i;
            }
            i = i + 1;
        }
        """)

    def test_same_name_in_both_arms(self):
        assert_differential("""
        array out[2];
        var x = 5;
        if (x > 3) { var t = 1; out[0] = t; } else { var t = 2; out[0] = t; }
        out[1] = x;
        """)

    def test_body_local_in_nested_loops(self):
        assert_differential("""
        array out[8];
        var i = 0;
        while (i < 2) {
            var j = 0;
            while (j < 2) {
                var cell = i * 4 + j;
                out[cell] = cell * 3;
                j = j + 1;
            }
            i = i + 1;
        }
        """)

    def test_arm_local_inside_loop_with_carries(self):
        assert_differential("""
        array out[8];
        var acc = 0;
        var i = 0;
        while (i < 6) {
            if (i > 2) {
                var bonus = i * i;
                acc = acc + bonus;
            }
            out[i] = acc;
            i = i + 1;
        }
        """)
