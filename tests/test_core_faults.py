"""Tests for the fault model transitions (reg-zap, Q-zap1, Q-zap2)."""

import pytest

from repro.core import (
    Color,
    DEST,
    Halt,
    InvalidFault,
    MachineState,
    PC_G,
    QueueZapAddress,
    QueueZapValue,
    RegZap,
    RegisterFile,
    StoreQueue,
    apply_fault,
    fault_sites,
    green,
    is_effective,
)


def make_state(queue=()):
    return MachineState(
        regs=RegisterFile.initial(1, num_gprs=4),
        code={1: Halt()},
        memory={},
        queue=StoreQueue(queue),
    )


class TestRegZap:
    def test_zap_changes_payload_preserves_color(self):
        state = make_state()
        state.regs.set("r1", green(5))
        apply_fault(state, RegZap("r1", 1234))
        assert state.regs.get("r1") == green(1234)

    def test_zap_applies_to_program_counters(self):
        # Control-flow faults are reg-zaps on pcG/pcB.
        state = make_state()
        apply_fault(state, RegZap(PC_G, 99))
        assert state.regs.value(PC_G) == 99
        assert state.regs.color(PC_G) is Color.GREEN

    def test_zap_applies_to_destination_register(self):
        state = make_state()
        apply_fault(state, RegZap(DEST, 7))
        assert state.regs.value(DEST) == 7

    def test_zap_unknown_register_is_invalid(self):
        state = make_state()
        with pytest.raises(InvalidFault):
            apply_fault(state, RegZap("r99", 0))

    def test_zap_terminal_state_is_invalid(self):
        state = make_state()
        state.enter_fault()
        with pytest.raises(InvalidFault):
            apply_fault(state, RegZap("r1", 0))


class TestQueueZap:
    def test_zap_address_component(self):
        state = make_state(queue=[(256, 5)])
        apply_fault(state, QueueZapAddress(0, 999))
        assert state.queue.pairs() == ((999, 5),)

    def test_zap_value_component(self):
        state = make_state(queue=[(256, 5)])
        apply_fault(state, QueueZapValue(0, 999))
        assert state.queue.pairs() == ((256, 999),)

    def test_zap_interior_pair(self):
        state = make_state(queue=[(1, 10), (2, 20), (3, 30)])
        apply_fault(state, QueueZapValue(1, 99))
        assert state.queue.pairs() == ((1, 10), (2, 99), (3, 30))

    def test_zap_out_of_range_is_invalid(self):
        state = make_state(queue=[(1, 10)])
        with pytest.raises(InvalidFault):
            apply_fault(state, QueueZapAddress(3, 0))

    def test_zap_empty_queue_is_invalid(self):
        state = make_state()
        with pytest.raises(InvalidFault):
            apply_fault(state, QueueZapValue(0, 0))


class TestEnumeration:
    def test_fault_sites_cover_registers_and_queue(self):
        state = make_state(queue=[(1, 10), (2, 20)])
        sites = list(fault_sites(state))
        regs = {f.reg for f in sites if isinstance(f, RegZap)}
        # 4 gprs + pcG + pcB + d
        assert len(regs) == 7
        addr_zaps = [f for f in sites if isinstance(f, QueueZapAddress)]
        value_zaps = [f for f in sites if isinstance(f, QueueZapValue)]
        assert len(addr_zaps) == 2
        assert len(value_zaps) == 2

    def test_is_effective(self):
        state = make_state(queue=[(1, 10)])
        state.regs.set("r1", green(5))
        assert is_effective(state, RegZap("r1", 6))
        assert not is_effective(state, RegZap("r1", 5))
        assert is_effective(state, QueueZapAddress(0, 2))
        assert not is_effective(state, QueueZapAddress(0, 1))
        assert is_effective(state, QueueZapValue(0, 11))
        assert not is_effective(state, QueueZapValue(0, 10))

    def test_describe_strings(self):
        assert "reg-zap" in RegZap("r1", 5).describe()
        assert "Q-zap1" in QueueZapAddress(0, 5).describe()
        assert "Q-zap2" in QueueZapValue(0, 5).describe()
