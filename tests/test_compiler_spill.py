"""Tests for register spilling.

High-pressure programs used to fail with "register pressure too high";
now they spill to a reserved (non-observable) memory region, and -- the
crucial property -- spilled FT builds still type-check and still pass
differential and fault-injection checks: spill stores go through the same
checked stG/stB discipline as everything else.
"""

import pytest

from repro.compiler import compile_source
from repro.compiler.ir import Block, CFG, IBin, IConst, IStore, THalt, VReg
from repro.compiler.spill import (
    SPILL_BASE,
    SpillState,
    allocate_with_spilling,
    spill_rewrite,
)
from repro.core import Outcome, run_to_completion
from repro.lang import check_source, interpret, parse_source


def v(i):
    return VReg(i)


def _high_pressure_source(width=40):
    """A program with ``width`` simultaneously live, unfoldable scalars."""
    decls = "\n".join(
        f"var x{i} = seed[{i % 4}] * {i + 1};" for i in range(width)
    )
    total = " + ".join(f"x{i}" for i in range(width))
    return f"""
    array seed[4] = {{1, 2, 3, 4}};
    array out[2];
    {decls}
    out[0] = {total};
    out[1] = ({total}) * 2;
    """


def _expected_total(width=40):
    seed = [1, 2, 3, 4]
    return sum(seed[i % 4] * (i + 1) for i in range(width))


class TestSpillRewrite:
    def test_def_and_use_rewritten(self):
        cfg = CFG(entry="a")
        cfg.add(Block("a", [
            IConst(v(1), 7),
            IBin("add", v(2), v(1), 1),
            IStore(v(2), v(1)),
        ], THalt()))
        spill_rewrite(cfg, v(1), SPILL_BASE)
        ops = cfg.block("a").ops
        # v1's definition now stores to the slot; its uses reload.
        stores = [op for op in ops if isinstance(op, IStore)
                  and any(isinstance(o, IConst) and o.value == SPILL_BASE
                          and o.dst == op.addr for o in ops)]
        assert stores
        assert all(op_does_not_mention(op, v(1)) or isinstance(op, IStore)
                   for op in ops)

    def test_allocation_converges_under_pressure(self):
        cfg = CFG(entry="a")
        ops = [IConst(v(i), i) for i in range(1, 9)]
        total = v(100)
        ops.append(IBin("add", total, v(1), v(2)))
        for i in range(3, 9):
            nxt = v(100 + i)
            ops.append(IBin("add", nxt, total, v(i)))
            total = nxt
        ops.append(IStore(total, total))
        cfg.add(Block("a", ops, THalt()))
        assignment, state = allocate_with_spilling(cfg, ["r1", "r2", "r3"])
        assert state.slots  # something was spilled
        assert assignment  # and everything got a register afterwards


def op_does_not_mention(op, vreg):
    from repro.compiler.ir import op_def, op_uses

    return vreg not in op_uses(op) and op_def(op) != vreg


class TestSpilledPrograms:
    @pytest.fixture(scope="class")
    def source(self):
        return _high_pressure_source(40)

    def test_reference_semantics(self, source):
        ast = parse_source(source)
        check_source(ast)
        result = interpret(ast)
        assert result.writes[0][2] == _expected_total()
        assert result.writes[1][2] == _expected_total() * 2

    @pytest.mark.parametrize("mode", ["baseline", "ft"])
    def test_spilled_build_matches_interpreter(self, source, mode):
        ast = parse_source(source)
        check_source(ast)
        expected = [(a, i, val) for a, i, val in interpret(ast).writes]
        compiled = compile_source(source, mode=mode, num_gprs=32)
        trace = run_to_completion(compiled.program.boot())
        assert trace.outcome is Outcome.HALTED
        observed = [
            compiled.lowered.layout.describe(address) + (value,)
            for address, value in trace.outputs
        ]
        assert observed == expected

    def test_spill_traffic_is_not_observable(self, source):
        compiled = compile_source(source, mode="ft", num_gprs=32)
        assert compiled.program.observable_min > SPILL_BASE
        trace = run_to_completion(compiled.program.boot())
        assert all(addr >= compiled.program.observable_min
                   for addr, _ in trace.outputs)

    def test_spilled_ft_build_typechecks(self, source):
        compiled = compile_source(source, mode="ft", num_gprs=32)
        assert any(a < 65536 for a in compiled.program.initial_memory), \
            "expected spill slots in the data segment"
        compiled.program.check()

    def test_spilled_ft_build_is_fault_tolerant(self, source):
        from repro.injection import CampaignConfig, run_campaign

        compiled = compile_source(source, mode="ft", num_gprs=32)
        config = CampaignConfig(max_injection_steps=20,
                                max_values_per_site=2,
                                max_sites_per_step=8, seed=9)
        report = run_campaign(compiled.program, config)
        assert report.coverage == 1.0, report.summary()

    def test_no_spills_when_registers_suffice(self):
        compiled = compile_source(_high_pressure_source(10), mode="ft",
                                  num_gprs=64)
        assert compiled.program.observable_min == 0
        assert all(a >= 65536 for a in compiled.program.initial_memory)
