"""Tests for the MWL source language: parser, checker, interpreter."""

import pytest

from repro.core import SourceError
from repro.lang import (
    ArrayAssign,
    Binary,
    Call,
    If,
    IntLit,
    Name,
    VarDecl,
    While,
    check_source,
    interpret,
    parse_source,
    storage_size,
)


def program(source):
    parsed = parse_source(source)
    check_source(parsed)
    return parsed


class TestParser:
    def test_globals_arrays_functions(self):
        source = """
        var x = 3;
        array a[4] = {1, 2};
        fn double(v) { return v * 2; }
        a[0] = double(x);
        """
        parsed = program(source)
        assert parsed.globals[0].name == "x"
        assert parsed.arrays[0].size == 4
        assert parsed.arrays[0].init == (1, 2)
        assert parsed.functions[0].params == ("v",)
        assert isinstance(parsed.main[0], ArrayAssign)

    def test_precedence(self):
        parsed = program("var y = 0; y = 1 + 2 * 3;")
        value = parsed.main[0].value
        assert isinstance(value, Binary) and value.op == "+"
        assert isinstance(value.right, Binary) and value.right.op == "*"

    def test_comparison_chain(self):
        parsed = program("var y = 0; y = 1 < 2 == 1;")
        value = parsed.main[0].value
        assert value.op == "=="

    def test_comments(self):
        parsed = program("// a comment\nvar x = 1; // trailing\n")
        assert parsed.globals[0].init == 1

    def test_if_else_while(self):
        source = """
        var x = 5;
        while (x) { x = x - 1; }
        if (x == 0) { x = 7; } else { x = 8; }
        """
        parsed = program(source)
        assert isinstance(parsed.main[0], While)
        assert isinstance(parsed.main[1], If)

    def test_unary_operators(self):
        parsed = program("var x = -3; var y = !x;")

    def test_parse_error_reports_line(self):
        with pytest.raises(SourceError) as excinfo:
            parse_source("var x = ;")
        assert excinfo.value.line >= 1


class TestChecker:
    def test_undeclared_variable(self):
        with pytest.raises(SourceError):
            program("var x = y;")

    def test_duplicate_toplevel(self):
        with pytest.raises(SourceError):
            program("var x = 1; array x[2];")

    def test_shadowing_rejected(self):
        with pytest.raises(SourceError):
            program("var x = 1; var x = 2;")

    def test_recursion_rejected(self):
        with pytest.raises(SourceError):
            program("fn f(n) { return f(n); } var x = f(1);")

    def test_mutual_recursion_rejected(self):
        source = """
        fn f(n) { return g(n); }
        fn g(n) { return f(n); }
        var x = f(1);
        """
        with pytest.raises(SourceError):
            program(source)

    def test_arity_mismatch(self):
        with pytest.raises(SourceError):
            program("fn f(a, b) { return a + b; } var x = f(1);")

    def test_return_outside_function(self):
        with pytest.raises(SourceError):
            program("return 1;")

    def test_return_not_last(self):
        with pytest.raises(SourceError):
            program("fn f() { return 1; var x = 2; } var y = f();")

    def test_void_call_as_expression(self):
        source = """
        array a[2];
        fn store(v) { a[0] = v; }
        var x = store(1);
        """
        with pytest.raises(SourceError):
            program(source)

    def test_array_used_without_index(self):
        with pytest.raises(SourceError):
            program("array a[2]; var x = a;")

    def test_store_to_undeclared_array(self):
        with pytest.raises(SourceError):
            program("a[0] = 1;")

    def test_nonrecursive_call_chain_ok(self):
        source = """
        fn f(n) { return n + 1; }
        fn g(n) { return f(n) * 2; }
        var x = g(3);
        """
        program(source)


class TestInterpreter:
    def test_arithmetic_and_globals(self):
        result = interpret(program("var x = 2; x = x * 21;"))
        assert result.globals["x"] == 42

    def test_array_writes_are_observable(self):
        source = """
        array out[4];
        var i = 0;
        while (i < 3) { out[i] = i * 10; i = i + 1; }
        """
        result = interpret(program(source))
        assert result.writes == [("out", 0, 0), ("out", 1, 10), ("out", 2, 20)]

    def test_index_masking(self):
        # Array of declared size 3 -> storage 4 -> mask 3.
        result = interpret(program("array a[3]; a[5] = 9;"))
        assert result.writes == [("a", 1, 9)]

    def test_storage_size(self):
        assert storage_size(1) == 1
        assert storage_size(3) == 4
        assert storage_size(4) == 4
        assert storage_size(9) == 16

    def test_if_else(self):
        source = """
        array out[2];
        var x = 5;
        if (x > 3) { out[0] = 1; } else { out[0] = 2; }
        if (x < 3) { out[1] = 1; } else { out[1] = 2; }
        """
        result = interpret(program(source))
        assert result.arrays["out"][:2] == [1, 2]

    def test_function_inlining_semantics(self):
        source = """
        array out[1];
        fn fma(a, b, c) { return a * b + c; }
        out[0] = fma(2, 3, 4);
        """
        result = interpret(program(source))
        assert result.writes == [("out", 0, 10)]

    def test_void_function_call_statement(self):
        source = """
        array out[2];
        fn emit(i, v) { out[i] = v; }
        emit(0, 11);
        emit(1, 22);
        """
        result = interpret(program(source))
        assert result.writes == [("out", 0, 11), ("out", 1, 22)]

    @pytest.mark.parametrize(
        "expr,expected",
        [("1 + 2", 3), ("5 - 8", -3), ("3 * 4", 12), ("7 & 5", 5),
         ("1 | 6", 7), ("3 ^ 5", 6), ("1 << 4", 16), ("-16 >> 2", -4),
         ("2 < 3", 1), ("3 <= 3", 1), ("4 > 5", 0), ("5 >= 5", 1),
         ("3 == 3", 1), ("3 != 3", 0), ("1 && 2", 1), ("0 && 2", 0),
         ("0 || 0", 0), ("0 || 5", 1), ("!0", 1), ("!7", 0), ("-(3)", -3)],
    )
    def test_operators(self, expr, expected):
        result = interpret(program(f"array out[1]; out[0] = {expr};"))
        assert result.writes[-1][2] == expected

    def test_step_budget(self):
        from repro.lang.interp import InterpLimit

        with pytest.raises(InterpLimit):
            interpret(program("var x = 1; while (x) { x = 1; }"),
                      max_steps=1000)

    def test_nested_loops(self):
        source = """
        array out[16];
        var i = 0;
        while (i < 3) {
            var j = 0;
            while (j < 3) {
                out[i * 4 + j] = i * 10 + j;
                j = j + 1;
            }
            i = i + 1;
        }
        """
        result = interpret(program(source))
        assert len(result.writes) == 9
        assert result.arrays["out"][5] == 11

    def test_array_reads(self):
        source = """
        array src[4] = {5, 6, 7, 8};
        array dst[4];
        var i = 0;
        while (i < 4) { dst[i] = src[i] * 2; i = i + 1; }
        """
        result = interpret(program(source))
        assert result.arrays["dst"] == [10, 12, 14, 16]
