"""Round-trip tests: Program -> .tal text -> Program.

The emitter must preserve code, typing interface, boot state, and hence
observable behavior; re-parsed FT builds must still type-check.
"""

import pytest

from repro.asm import emit_tal, parse_program, render_expr
from repro.core import Outcome, ReproError, run_to_completion
from repro.statics import BinExpr, EmptyMem, IntConst, Sel, Upd, Var
from repro.workloads import compile_kernel
from tests.helpers import countdown_loop_program, paper_store_program

ROUND_TRIP_KERNELS = ("vpr", "jpeg", "gsm")


def round_trip(program):
    text = emit_tal(program)
    reparsed = parse_program(text)
    return text, reparsed


class TestRenderExpr:
    @pytest.mark.parametrize("expr,text", [
        (IntConst(5), "5"),
        (IntConst(-3), "-3"),
        (Var("x"), "x"),
        (EmptyMem(), "emp"),
        (BinExpr("add", Var("x"), IntConst(1)), "(x add 1)"),
        (Sel(Var("m"), IntConst(4)), "sel(m, 4)"),
        (Upd(Var("m"), IntConst(4), Var("v")), "upd(m, 4, v)"),
    ])
    def test_rendering(self, expr, text):
        assert render_expr(expr) == text

    def test_rendered_expressions_reparse(self):
        # Render an expression, embed it in a precondition, re-parse.
        from repro.asm.parser import _Parser

        expr = BinExpr("mul", BinExpr("add", Var("x"), IntConst(2)), Var("y"))
        parser = _Parser(render_expr(expr))
        assert parser.parse_expr() == expr


class TestHandwrittenRoundTrip:
    def test_store_program(self):
        program = paper_store_program()
        text, reparsed = round_trip(program)
        reparsed.check()
        assert run_to_completion(reparsed.boot()).outputs == [(256, 5)]

    def test_loop_program(self):
        program = countdown_loop_program(3)
        text, reparsed = round_trip(program)
        reparsed.check()
        trace = run_to_completion(reparsed.boot())
        assert trace.outputs == [(256, 3), (256, 2), (256, 1)]

    def test_second_round_trip_is_stable(self):
        program = countdown_loop_program(2)
        text1, reparsed = round_trip(program)
        text2, _ = round_trip(reparsed)
        assert text1 == text2


@pytest.mark.parametrize("name", ROUND_TRIP_KERNELS)
class TestCompiledRoundTrip:
    def test_reparsed_build_typechecks(self, name):
        _text, reparsed = round_trip(compile_kernel(name, "ft").program)
        reparsed.check()

    def test_identical_observable_behavior(self, name):
        program = compile_kernel(name, "ft").program
        _text, reparsed = round_trip(program)
        original = run_to_completion(program.boot(), max_steps=2_000_000)
        replayed = run_to_completion(reparsed.boot(), max_steps=2_000_000)
        assert original.outcome is Outcome.HALTED
        assert replayed.outputs == original.outputs

    def test_boot_colors_preserved(self, name):
        program = compile_kernel(name, "ft").program
        _text, reparsed = round_trip(program)
        assert reparsed.gpr_colors == program.gpr_colors


class TestEmitterErrors:
    def test_unlabeled_entry_rejected(self):
        from repro.program import Program
        from repro.core import Halt

        program = Program(code={1: Halt()})
        with pytest.raises(ReproError):
            emit_tal(program)


class TestDirectives:
    def test_bluepool_directive(self):
        source = """
.gprs 8
.bluepool 5 8
.code
main:
  .pre [m: mem] {
      r5: (B, int, 0), r6: (B, int, 0), r7: (B, int, 0), r8: (B, int, 0),
      rest: zero
  } mem m
  halt
"""
        program = parse_program(source)
        from repro.core import Color

        assert program.gpr_colors["r5"] is Color.BLUE
        assert "r4" not in program.gpr_colors
        program.check()  # blue-typed entry matches blue boot

    def test_bluepool_out_of_range_rejected(self):
        from repro.core import AsmError

        source = """
.gprs 4
.bluepool 3 9
.code
main:
  .pre [m: mem] { rest: zero } mem m
  halt
"""
        with pytest.raises(AsmError):
            parse_program(source)

    def test_observable_directive(self):
        source = """
.observable 1000
.data
  word 500 = 0
  word 1000 = 0
.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 500
  mov r2, G 7
  stG r1, r2
  mov r3, B 500
  mov r4, B 7
  stB r3, r4
  mov r1, G 1000
  mov r3, B 1000
  stG r1, r2
  stB r3, r4
  halt
"""
        program = parse_program(source)
        trace = run_to_completion(program.boot())
        # Only the store at/above the observable threshold is output.
        assert trace.outputs == [(1000, 7)]
        assert program.observable_min == 1000


class TestGeneratedWorkloadRoundTrip:
    """Property-style: compiled synthetic workloads survive the round trip."""

    @pytest.mark.parametrize("chains,loads,branches", [
        (1, 0, 0), (2, 1, 1), (4, 2, 0), (3, 1, 2),
    ])
    def test_generated_round_trip(self, chains, loads, branches):
        from repro.workloads import WorkloadSpec, generate_compiled

        spec = WorkloadSpec(chains=chains, loads_per_chain=loads,
                            branches=branches, iterations=6, seed=42)
        program = generate_compiled(spec, "ft").program
        text, reparsed = round_trip(program)
        reparsed.check()
        original = run_to_completion(program.boot(), max_steps=2_000_000)
        replayed = run_to_completion(reparsed.boot(), max_steps=2_000_000)
        assert replayed.outputs == original.outputs
