"""Rule-by-rule tests of the operational semantics (Figs. 2-4 + App. A.1).

Each test pins down one operational rule, asserting both the state change
and the rule name that fired.  The worked examples from Section 2.2 of the
paper appear at the bottom as integration tests.
"""

import pytest

from repro.core import (
    ArithRRI,
    ArithRRR,
    Bz,
    Color,
    DEST,
    Halt,
    Jmp,
    Load,
    MachineState,
    MachineStuck,
    Mov,
    Machine,
    OobPolicy,
    Outcome,
    PC_B,
    PC_G,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
    RegisterFile,
    Status,
    Store,
    StoreQueue,
    blue,
    green,
    step,
)


def make_state(code, memory=None, queue=None, entry=1, num_gprs=8):
    return MachineState(
        regs=RegisterFile.initial(entry, num_gprs=num_gprs),
        code=dict(code),
        memory=dict(memory or {}),
        queue=StoreQueue(queue or ()),
    )


def run_steps(state, n, **kwargs):
    rules = []
    outputs = []
    for _ in range(n):
        result = step(state, **kwargs)
        rules.append(result.rule)
        outputs.extend(result.outputs)
    return rules, outputs


class TestFetch:
    def test_fetch_loads_instruction(self):
        state = make_state({1: Mov("r1", green(5))})
        result = step(state)
        assert result.rule == "fetch"
        assert state.ir == Mov("r1", green(5))

    def test_fetch_fail_on_pc_disagreement(self):
        state = make_state({1: Mov("r1", green(5))})
        state.regs.set(PC_B, blue(2))
        result = step(state)
        assert result.rule == "fetch-fail"
        assert state.status is Status.FAULT_DETECTED

    def test_fetch_from_invalid_address_is_stuck(self):
        state = make_state({1: Mov("r1", green(5))}, entry=7)
        with pytest.raises(MachineStuck):
            step(state)

    def test_fetch_does_not_advance_pcs(self):
        state = make_state({1: Mov("r1", green(5))})
        step(state)
        assert state.regs.value(PC_G) == 1
        assert state.regs.value(PC_B) == 1


class TestBasicInstructions:
    def test_mov_writes_colored_constant(self):
        state = make_state({1: Mov("r1", blue(42))})
        run_steps(state, 2)
        assert state.regs.get("r1") == blue(42)
        assert state.regs.value(PC_G) == 2
        assert state.regs.value(PC_B) == 2

    def test_op2r_result_color_follows_rt(self):
        # Rule op2r: R' = R++[rd -> Rcol(rt) (Rval(rs) op Rval(rt))]
        state = make_state({1: Mov("r1", green(10)),
                            2: Mov("r2", blue(4)),
                            3: ArithRRR("sub", "r3", "r1", "r2")})
        run_steps(state, 6)
        assert state.regs.get("r3") == blue(6)

    def test_op1r_result_color_follows_immediate(self):
        state = make_state({1: Mov("r1", blue(10)),
                            2: ArithRRI("mul", "r2", "r1", green(3))})
        run_steps(state, 4)
        assert state.regs.get("r2") == green(30)

    @pytest.mark.parametrize(
        "op,x,y,expected",
        [("add", 2, 3, 5), ("sub", 2, 3, -1), ("mul", 4, 5, 20),
         ("slt", 1, 2, 1), ("slt", 2, 1, 0), ("and", 6, 3, 2),
         ("or", 6, 3, 7), ("xor", 6, 3, 5), ("sll", 3, 2, 12),
         ("sra", 12, 2, 3)],
    )
    def test_alu_ops(self, op, x, y, expected):
        state = make_state({1: Mov("r1", green(x)),
                            2: Mov("r2", green(y)),
                            3: ArithRRR(op, "r3", "r1", "r2")})
        run_steps(state, 6)
        assert state.regs.value("r3") == expected

    def test_halt_terminates(self):
        state = make_state({1: Halt()})
        rules, _ = run_steps(state, 2)
        assert rules == ["fetch", "halt"]
        assert state.status is Status.HALTED


class TestStores:
    def test_stG_pushes_pair_on_queue_front(self):
        state = make_state({1: Mov("r1", green(5)),
                            2: Mov("r2", green(256)),
                            3: Store(Color.GREEN, "r2", "r1")},
                           memory={256: 0})
        rules, outputs = run_steps(state, 6)
        assert rules[-1] == "stG-queue"
        assert state.queue.pairs() == ((256, 5),)
        assert outputs == []  # nothing observable yet
        assert state.memory[256] == 0

    def test_stB_commits_matching_pair(self):
        state = make_state({1: Store(Color.BLUE, "r2", "r1")},
                           memory={256: 0}, queue=[(256, 5)])
        state.regs.set("r1", blue(5))
        state.regs.set("r2", blue(256))
        rules, outputs = run_steps(state, 2)
        assert rules[-1] == "stB-mem"
        assert outputs == [(256, 5)]
        assert state.memory[256] == 5
        assert len(state.queue) == 0

    def test_stB_mismatched_value_detected(self):
        state = make_state({1: Store(Color.BLUE, "r2", "r1")},
                           memory={256: 0}, queue=[(256, 5)])
        state.regs.set("r1", blue(6))  # corrupted copy
        state.regs.set("r2", blue(256))
        rules, outputs = run_steps(state, 2)
        assert rules[-1] == "stB-mem-fail"
        assert state.status is Status.FAULT_DETECTED
        assert outputs == []

    def test_stB_mismatched_address_detected(self):
        state = make_state({1: Store(Color.BLUE, "r2", "r1")},
                           memory={256: 0, 257: 0}, queue=[(256, 5)])
        state.regs.set("r1", blue(5))
        state.regs.set("r2", blue(257))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "stB-mem-fail"

    def test_stB_on_empty_queue_detected(self):
        state = make_state({1: Store(Color.BLUE, "r2", "r1")}, memory={256: 0})
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "stB-queue-fail"
        assert state.status is Status.FAULT_DETECTED

    def test_stB_commits_back_not_front(self):
        # Two pending stores: the blue store must match the *older* one.
        state = make_state({1: Store(Color.BLUE, "r2", "r1")},
                           memory={}, queue=[(300, 9), (256, 5)])
        state.regs.set("r1", blue(5))
        state.regs.set("r2", blue(256))
        _, outputs = run_steps(state, 2)
        assert outputs == [(256, 5)]
        assert state.queue.pairs() == ((300, 9),)


class TestLoads:
    def test_ldG_prefers_queue(self):
        state = make_state({1: Load(Color.GREEN, "r2", "r1")},
                           memory={256: 7}, queue=[(256, 99)])
        state.regs.set("r1", green(256))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "ldG-queue"
        assert state.regs.get("r2") == green(99)

    def test_ldG_falls_back_to_memory(self):
        state = make_state({1: Load(Color.GREEN, "r2", "r1")}, memory={256: 7})
        state.regs.set("r1", green(256))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "ldG-mem"
        assert state.regs.get("r2") == green(7)

    def test_ldB_ignores_queue(self):
        state = make_state({1: Load(Color.BLUE, "r2", "r1")},
                           memory={256: 7}, queue=[(256, 99)])
        state.regs.set("r1", blue(256))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "ldB-mem"
        assert state.regs.get("r2") == blue(7)

    def test_ldG_oob_trap(self):
        state = make_state({1: Load(Color.GREEN, "r2", "r1")})
        state.regs.set("r1", green(12345))
        rules, _ = run_steps(state, 2, oob_policy=OobPolicy.TRAP)
        assert rules[-1] == "ldG-fail"
        assert state.status is Status.FAULT_DETECTED

    def test_ldG_oob_random(self):
        state = make_state({1: Load(Color.GREEN, "r2", "r1")})
        state.regs.set("r1", green(12345))
        rules, _ = run_steps(state, 2, oob_policy=OobPolicy.RANDOM,
                             rand_source=lambda: 77)
        assert rules[-1] == "ldG-rand"
        assert state.regs.get("r2") == green(77)
        assert state.status is Status.RUNNING

    def test_ldB_oob_random(self):
        state = make_state({1: Load(Color.BLUE, "r2", "r1")})
        state.regs.set("r1", blue(12345))
        rules, _ = run_steps(state, 2, oob_policy=OobPolicy.RANDOM,
                             rand_source=lambda: -1)
        assert rules[-1] == "ldB-rand"
        assert state.regs.get("r2") == blue(-1)

    def test_ldB_oob_trap(self):
        state = make_state({1: Load(Color.BLUE, "r2", "r1")})
        state.regs.set("r1", blue(12345))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "ldB-fail"


class TestControlFlow:
    def test_jmpG_moves_target_into_dest(self):
        state = make_state({1: Mov("r1", green(5)), 2: Jmp(Color.GREEN, "r1"),
                            5: Halt()})
        rules, _ = run_steps(state, 4)
        assert rules[-1] == "jmpG"
        assert state.regs.get(DEST) == green(5)
        # jmpG is a move, not a transfer: pcs just advance.
        assert state.regs.value(PC_G) == 3

    def test_jmpG_with_pending_dest_detected(self):
        state = make_state({1: Jmp(Color.GREEN, "r1")})
        state.regs.set(DEST, green(9))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "jmpG-fail"
        assert state.status is Status.FAULT_DETECTED

    def test_jmpB_commits_agreed_transfer(self):
        state = make_state({1: Jmp(Color.BLUE, "r2"), 5: Halt()})
        state.regs.set(DEST, green(5))
        state.regs.set("r2", blue(5))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "jmpB"
        assert state.regs.get(PC_G) == green(5)
        assert state.regs.get(PC_B) == blue(5)
        assert state.regs.get(DEST) == green(0)

    def test_jmpB_disagreement_detected(self):
        state = make_state({1: Jmp(Color.BLUE, "r2")})
        state.regs.set(DEST, green(5))
        state.regs.set("r2", blue(6))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "jmpB-fail"

    def test_jmpB_without_announcement_detected(self):
        state = make_state({1: Jmp(Color.BLUE, "r2")})
        state.regs.set("r2", blue(0))  # d == 0 and rd == 0: still a fault
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "jmpB-fail"

    def test_bz_untaken_falls_through(self):
        state = make_state({1: Bz(Color.GREEN, "r1", "r2"), 2: Halt()})
        state.regs.set("r1", green(3))  # nonzero: not taken
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "bz-untaken"
        assert state.regs.value(PC_G) == 2

    def test_bz_untaken_with_pending_dest_detected(self):
        state = make_state({1: Bz(Color.BLUE, "r1", "r2")})
        state.regs.set("r1", blue(3))
        state.regs.set(DEST, green(9))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "bz-untaken-fail"

    def test_bzG_taken_announces(self):
        state = make_state({1: Bz(Color.GREEN, "r1", "r2")})
        state.regs.set("r2", green(7))
        rules, _ = run_steps(state, 2)  # r1 == 0: taken
        assert rules[-1] == "bzG-taken"
        assert state.regs.get(DEST) == green(7)
        assert state.regs.value(PC_G) == 2  # announcement, not transfer

    def test_bzG_taken_with_pending_dest_detected(self):
        state = make_state({1: Bz(Color.GREEN, "r1", "r2")})
        state.regs.set(DEST, green(9))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "bzG-taken-fail"

    def test_bzB_taken_commits(self):
        state = make_state({1: Bz(Color.BLUE, "r1", "r2"), 7: Halt()})
        state.regs.set(DEST, green(7))
        state.regs.set("r2", blue(7))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "bzB-taken"
        assert state.regs.value(PC_G) == 7
        assert state.regs.value(PC_B) == 7
        assert state.regs.get(DEST) == green(0)

    def test_bzB_taken_disagreement_detected(self):
        state = make_state({1: Bz(Color.BLUE, "r1", "r2")})
        state.regs.set(DEST, green(7))
        state.regs.set("r2", blue(8))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "bzB-taken-fail"

    def test_bzB_taken_without_announcement_detected(self):
        state = make_state({1: Bz(Color.BLUE, "r1", "r2")})
        state.regs.set("r2", blue(0))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "bzB-taken-fail"


class TestPlainBaselineInstructions:
    def test_plain_store_commits_immediately(self):
        state = make_state({1: PlainStore("r2", "r1")}, memory={256: 0})
        state.regs.set("r1", green(5))
        state.regs.set("r2", green(256))
        rules, outputs = run_steps(state, 2)
        assert rules[-1] == "st-mem"
        assert outputs == [(256, 5)]
        assert state.memory[256] == 5

    def test_plain_load(self):
        state = make_state({1: PlainLoad("r2", "r1")}, memory={256: 7})
        state.regs.set("r1", green(256))
        run_steps(state, 2)
        assert state.regs.value("r2") == 7

    def test_plain_jmp_sets_both_pcs(self):
        state = make_state({1: PlainJmp("r1"), 5: Halt()})
        state.regs.set("r1", green(5))
        run_steps(state, 2)
        assert state.regs.value(PC_G) == 5
        assert state.regs.value(PC_B) == 5

    def test_plain_bz_taken_and_untaken(self):
        state = make_state({1: PlainBz("r1", "r2"), 5: Halt()})
        state.regs.set("r2", green(5))
        rules, _ = run_steps(state, 2)
        assert rules[-1] == "bz-taken"
        assert state.regs.value(PC_G) == 5

        state2 = make_state({1: PlainBz("r1", "r2"), 2: Halt()})
        state2.regs.set("r1", green(1))
        rules2, _ = run_steps(state2, 2)
        assert rules2[-1] == "bz-untaken-plain"
        assert state2.regs.value(PC_G) == 2


class TestPaperSection22Examples:
    """The worked examples from Section 2.2 of the paper."""

    def _store_example_code(self):
        # 1 mov r1, G5    2 mov r2, G256   3 stG r2, r1
        # 4 mov r3, B5    5 mov r4, B256   6 stB r4, r3
        return {
            1: Mov("r1", green(5)),
            2: Mov("r2", green(256)),
            3: Store(Color.GREEN, "r2", "r1"),
            4: Mov("r3", blue(5)),
            5: Mov("r4", blue(256)),
            6: Store(Color.BLUE, "r4", "r3"),
            7: Halt(),
        }

    def test_fault_free_run_stores_5_at_256(self):
        state = make_state(self._store_example_code(), memory={256: 0})
        trace = Machine(state).run()
        assert trace.outcome is Outcome.HALTED
        assert trace.outputs == [(256, 5)]
        assert state.memory[256] == 5

    def test_any_register_fault_is_caught_by_blue_store(self):
        # "a fault at any point in execution, to either blue or green values
        #  or addresses, will be caught by the hardware when the blue store
        #  compares its operands to those in the queue."
        from repro.core import RegZap

        detected = 0
        for reg in ("r1", "r2", "r3", "r4"):
            for at_step in range(0, 11):
                state = make_state(self._store_example_code(), memory={256: 0})
                trace = Machine(state).run(
                    fault=RegZap(reg, 1000), fault_at_step=at_step
                )
                # Either the fault landed after the value was consumed (same
                # output) or it was detected; silent corruption never happens.
                if trace.detected:
                    detected += 1
                    assert trace.outputs in ([], [(256, 5)])
                else:
                    assert trace.outputs == [(256, 5)]
        assert detected > 0  # the check does fire for early faults

    def test_cse_broken_sequence_corrupts_silently(self):
        # Section 2.2: after CSE the green and blue stores share registers,
        # so a fault in r1 after instruction 1 stores a wrong value at the
        # correct location -- silently.  (This is the code the type system
        # rejects; here we demonstrate the unsafety dynamically.)
        from repro.core import RegZap

        code = {
            1: Mov("r1", green(5)),
            2: Mov("r2", green(256)),
            3: Store(Color.GREEN, "r2", "r1"),
            4: Store(Color.BLUE, "r2", "r1"),
            5: Halt(),
        }
        state = make_state(code, memory={256: 0})
        # Fault in r1 right after instruction 1 executes (2 steps = fetch+mov).
        trace = Machine(state).run(fault=RegZap("r1", 1000), fault_at_step=2)
        assert trace.outcome is Outcome.HALTED  # not detected!
        assert trace.outputs == [(256, 1000)]  # silent corruption

    def test_control_flow_example(self):
        # 1 ldG r1, r2   2 jmpG r1   3 ldB r3, r4   4 jmpB r3
        code = {
            1: Load(Color.GREEN, "r1", "r2"),
            2: Jmp(Color.GREEN, "r1"),
            3: Load(Color.BLUE, "r3", "r4"),
            4: Jmp(Color.BLUE, "r3"),
            9: Halt(),
        }
        state = make_state(code, memory={100: 9})
        state.regs.set("r2", green(100))
        state.regs.set("r4", blue(100))
        trace = Machine(state).run()
        assert trace.outcome is Outcome.HALTED
        assert state.regs.value(PC_G) == 9


class TestMachineRunner:
    def test_seu_budget_is_enforced(self):
        from repro.core import RegZap

        state = make_state({1: Halt()})
        machine = Machine(state)
        machine.inject(RegZap("r1", 5))
        with pytest.raises(MachineStuck):
            machine.inject(RegZap("r1", 6))

    def test_step_budget_reports_running(self):
        code = {1: Mov("r1", green(1)), 2: Mov("r1", green(5)), 3: Halt()}
        state = make_state(code)
        trace = Machine(state).run(max_steps=2)
        assert trace.outcome is Outcome.RUNNING
        assert trace.steps == 2

    def test_record_rules(self):
        state = make_state({1: Halt()})
        trace = Machine(state, record_rules=True).run()
        assert trace.rules == ["fetch", "halt"]
