"""Tests for the horizontally sharded campaign engine.

Three layers, one contract:

* :mod:`repro.injection.shard` -- deterministic planning, the
  order-insensitive merge, and the offline journal tooling;
* :mod:`repro.service` -- the wire protocol, the worker loop, the
  coordinator's fleet scheduling (local forks and TCP workers, work
  stealing, dead-worker reissue), and the HTTP campaign service;
* the contract: a sharded campaign's report is **bit-identical**
  (fingerprint-equal, ``latency_buckets`` included) to the
  single-process run -- under every backend, with pruning on or off,
  with workers dying mid-shard, and across interrupt/resume.
"""

import glob
import json
import os
import re
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.injection import CampaignConfig, ResilienceConfig, run_campaign
from repro.injection.campaign import (
    _injection_steps,
    _reference_run,
    resolve_backend_config,
)
from repro.injection.chaos import ChaosSpec, report_fingerprint
from repro.injection.journal import (
    JournalMismatch,
    config_digest,
    program_digest,
)
from repro.injection.shard import (
    existing_shard_journals,
    merge_journal_files,
    merge_outcomes,
    plan_campaign_shards,
    plan_shards,
    reconstruct_report,
)
from repro.service import run_campaign_sharded
from repro.service.protocol import (
    AUTHKEY_ENV,
    Connection,
    ProtocolError,
    coordinator_mac,
    make_nonce,
    pack_pickle,
    parse_address,
    worker_mac,
)
from repro.service.worker import run_listen, serve_connection
from repro.workloads import compile_kernel

CONFIG = CampaignConfig(max_injection_steps=8, max_sites_per_step=6,
                        max_values_per_site=2, seed=20260808)


def _program(name="adpcm"):
    return compile_kernel(name, "ft").program


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class TestPlanner:
    def test_partition_is_exact_and_ordered(self):
        specs = plan_shards(list(range(100)), 7, "p", "c")
        assert len(specs) == 7
        recombined = [step for spec in specs for step in spec.steps]
        assert recombined == list(range(100))  # contiguous, disjoint, total
        sizes = [len(spec.steps) for spec in specs]
        assert max(sizes) - min(sizes) <= 1  # balanced

    def test_plan_is_deterministic(self):
        assert plan_shards(list(range(50)), 4, "p", "c") == \
            plan_shards(list(range(50)), 4, "p", "c")

    def test_more_shards_than_steps_never_plans_empty_shards(self):
        specs = plan_shards([3, 9], 8, "p", "c")
        assert len(specs) == 2
        assert all(spec.steps for spec in specs)
        assert all(spec.num_shards == 2 for spec in specs)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            plan_shards([1, 2], 0, "p", "c")

    def test_specs_carry_campaign_identity(self):
        program = _program()
        config = resolve_backend_config(program, CONFIG)
        specs = plan_campaign_shards(program, config, 3)
        reference = _reference_run(program, config)
        steps = _injection_steps(reference.num_steps, config)
        assert [s for spec in specs for s in spec.steps] == steps
        assert all(spec.program_digest == program_digest(program)
                   for spec in specs)
        assert all(spec.config_digest == config_digest(config)
                   for spec in specs)

    def test_journal_path_naming(self):
        spec = plan_shards(list(range(10)), 4, "p", "c")[2]
        assert spec.journal_path("/tmp/x.journal") == \
            "/tmp/x.journal.shard-002-of-004"


# ---------------------------------------------------------------------------
# Order-insensitive merge
# ---------------------------------------------------------------------------


class TestMergeOutcomes:
    def test_any_arrival_order_merges_identically(self):
        from repro.injection.campaign import _run_step

        program = _program()
        config = resolve_backend_config(program, CONFIG)
        base = run_campaign(program, config)
        reference = _reference_run(program, config)
        steps = _injection_steps(reference.num_steps, config)
        budget = reference.trace.steps + config.step_slack
        done = {step: _run_step(program, config, reference, budget, step)
                for step in reversed(steps)}  # gathered "backwards"
        report = merge_outcomes(reference, config, steps, done)
        assert report_fingerprint(report) == report_fingerprint(base)
        assert report.latency_buckets == base.latency_buckets

    def test_missing_steps_refuse_to_merge(self):
        program = _program()
        config = resolve_backend_config(program, CONFIG)
        reference = _reference_run(program, config)
        steps = _injection_steps(reference.num_steps, config)
        with pytest.raises(ValueError, match="missing"):
            merge_outcomes(reference, config, steps, {})


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def _pair(self):
        left, right = socket.socketpair()
        return Connection(left), Connection(right)

    def test_round_trip(self):
        a, b = self._pair()
        try:
            a.send({"type": "hello", "n": 42, "nested": {"x": [1, 2]}})
            assert b.recv() == {"type": "hello", "n": 42,
                                "nested": {"x": [1, 2]}}
        finally:
            a.close(), b.close()

    def test_clean_eof_is_none(self):
        a, b = self._pair()
        a.close()
        assert b.recv() is None
        b.close()

    def test_garbage_frame_raises(self):
        left, right = socket.socketpair()
        conn = Connection(right)
        left.sendall(b"\x00\x00\x00\x05notjs")
        with pytest.raises(ProtocolError):
            conn.recv()
        conn.close(), left.close()

    def test_oversized_frame_announcement_raises(self):
        left, right = socket.socketpair()
        conn = Connection(right)
        left.sendall(b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError, match="limit"):
            conn.recv()
        conn.close(), left.close()

    def test_untyped_message_raises(self):
        left, right = socket.socketpair()
        conn = Connection(right)
        payload = json.dumps([1, 2, 3]).encode()
        left.sendall(len(payload).to_bytes(4, "big") + payload)
        with pytest.raises(ProtocolError, match="typed"):
            conn.recv()
        conn.close(), left.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.2:7070") == ("10.0.0.2", 7070)
        assert parse_address("7070") == ("127.0.0.1", 7070)
        with pytest.raises(ValueError):
            parse_address("host:notaport")
        with pytest.raises(ValueError):
            parse_address("host:70707")

    def test_parse_address_ipv6(self):
        assert parse_address("[::1]:7070") == ("::1", 7070)
        assert parse_address("[fe80::2]:7421") == ("fe80::2", 7421)
        # A bare multi-colon address must be rejected, never mis-split
        # into a bogus (host, port) by a right-partition on ':'.
        with pytest.raises(ValueError, match="brackets"):
            parse_address("::1:7070")
        with pytest.raises(ValueError):
            parse_address("[::1]7070")  # bracket without :PORT
        with pytest.raises(ValueError):
            parse_address("[]:7070")  # empty bracketed host

    def test_close_unblocks_a_parked_reader_thread(self):
        """close() must shut the socket down *before* touching the
        BufferedReader: a reader thread parked in recv() holds the
        reader's lock, and closing the file first deadlocks on it --
        exactly the coordinator's timeout force-close path."""
        a, b = self._pair()
        parked = threading.Event()

        def _read():
            parked.set()
            assert b.recv() is None  # unblocked by close(), clean EOF

        thread = threading.Thread(target=_read, daemon=True)
        thread.start()
        parked.wait(timeout=5)
        time.sleep(0.05)  # let the thread actually enter the read
        b.close()  # must not block on the reader's lock
        thread.join(timeout=5)
        assert not thread.is_alive()
        a.close()


# ---------------------------------------------------------------------------
# Sharded execution parity (the tentpole contract)
# ---------------------------------------------------------------------------


def _available_backends():
    from repro.exec.vector import vector_available

    backends = ["step", "compiled"]
    if vector_available():
        backends.append("vector")
    return backends


class TestShardedParity:
    @pytest.mark.parametrize("backend", _available_backends())
    @pytest.mark.parametrize("prune", [False, True])
    def test_local_fleet_matches_single_process(self, backend, prune):
        program = _program()
        config = CampaignConfig(
            max_injection_steps=8, max_sites_per_step=6,
            max_values_per_site=2, seed=20260808, prune=prune,
            backend=backend)
        base = run_campaign(program, config)
        sharded = run_campaign_sharded(program, config, shards=4)
        assert report_fingerprint(sharded) == report_fingerprint(base)
        assert sharded.latency_buckets == base.latency_buckets

    @pytest.mark.parametrize("kernel", ["gsm", "vpr"])
    def test_other_kernels_shard_identically(self, kernel):
        program = _program(kernel)
        base = run_campaign(program, CONFIG)
        sharded = run_campaign_sharded(program, CONFIG, shards=3)
        assert report_fingerprint(sharded) == report_fingerprint(base)

    def test_single_shard_degenerate_case(self):
        program = _program()
        base = run_campaign(program, CONFIG)
        sharded = run_campaign_sharded(program, CONFIG, shards=1)
        assert report_fingerprint(sharded) == report_fingerprint(base)

    def test_spawn_fleet_matches_single_process(self):
        # The spawn start method is what the HTTP service uses (forking
        # a multi-threaded process is unsafe); parity must hold there too.
        program = _program()
        base = run_campaign(program, CONFIG)
        sharded = run_campaign_sharded(program, CONFIG, shards=2,
                                       fleet_start_method="spawn")
        assert report_fingerprint(sharded) == report_fingerprint(base)

    def test_more_workers_than_shards(self):
        program = _program()
        base = run_campaign(program, CONFIG)
        sharded = run_campaign_sharded(program, CONFIG, shards=2,
                                       local_workers=4)
        assert report_fingerprint(sharded) == report_fingerprint(base)

    def test_tcp_worker_fleet(self):
        program = _program()
        base = run_campaign(program, CONFIG)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")])
        procs, addresses = [], []
        try:
            for _ in range(2):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "shard-worker",
                     "--listen", "127.0.0.1:0", "--once"],
                    stdout=subprocess.PIPE, text=True, env=env)
                line = proc.stdout.readline()
                match = re.search(r"listening on ([\d.]+):(\d+)", line)
                assert match, f"worker did not announce a port: {line!r}"
                addresses.append((match.group(1), int(match.group(2))))
                procs.append(proc)
            sharded = run_campaign_sharded(program, CONFIG, shards=4,
                                           workers=addresses)
            assert report_fingerprint(sharded) == report_fingerprint(base)
            for proc in procs:
                assert proc.wait(timeout=30) == 0  # --once exits cleanly
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()


class TestShardedResilience:
    def test_hung_worker_is_force_closed_and_campaign_completes(self):
        """A worker that accepts a shard and then streams nothing must be
        force-closed at its chunk-timeout deadline -- and the force-close
        must not deadlock the scheduler on the reader thread's lock."""
        program = _program()
        base = run_campaign(program, CONFIG)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def _hung_worker():
            sock, _ = listener.accept()
            conn = Connection(sock)
            conn.send({"type": "hello", "host": "hung", "pid": 0,
                       "nonce": make_nonce()})
            try:
                # Swallow the job and shard assignment, produce nothing.
                while conn.recv() is not None:
                    pass
            except (ProtocolError, OSError):
                pass

        thread = threading.Thread(target=_hung_worker, daemon=True)
        thread.start()
        try:
            sharded = run_campaign_sharded(
                program, CONFIG, shards=2, workers=[("127.0.0.1", port)],
                resilience=ResilienceConfig(chunk_timeout=0.5,
                                            max_retries=1,
                                            backoff_base=0.01))
        finally:
            listener.close()
        assert report_fingerprint(sharded) == report_fingerprint(base)
        stats = sharded.resilience
        assert stats.timeouts >= 1
        assert stats.shard_worker_deaths >= 1
        assert stats.fallback_chunks >= 1  # fleet gone -> serial finish


# ---------------------------------------------------------------------------
# Fleet authentication: no pickle flows past a failed handshake
# ---------------------------------------------------------------------------


class _EvilPayload:
    """Pickles to a payload whose *unpickling* creates a marker dir --
    proof that a worker unpickled an unauthenticated job."""

    def __init__(self, marker):
        self._marker = str(marker)

    def __reduce__(self):
        return (os.mkdir, (self._marker,))


class TestFleetAuth:
    def _worker_thread(self, authkey):
        left, right = socket.socketpair()
        thread = threading.Thread(target=serve_connection,
                                  args=(right,), kwargs={"authkey": authkey},
                                  daemon=True)
        thread.start()
        return Connection(left), thread

    def test_handshake_round_trip(self):
        key = b"fleet-secret"
        conn, thread = self._worker_thread(key)
        hello = conn.recv()
        assert hello["type"] == "hello" and hello["nonce"]
        nonce = make_nonce()
        conn.send({"type": "auth",
                   "mac": coordinator_mac(key, hello["nonce"]),
                   "nonce": nonce})
        reply = conn.recv()
        assert reply["type"] == "auth-ok"
        assert reply["mac"] == worker_mac(key, nonce)
        conn.send({"type": "shutdown"})
        assert conn.recv()["type"] == "bye"
        thread.join(timeout=10)
        conn.close()

    def test_keyed_worker_never_unpickles_unauthenticated_job(self,
                                                              tmp_path):
        marker = tmp_path / "pwned"
        conn, thread = self._worker_thread(b"fleet-secret")
        assert conn.recv()["type"] == "hello"
        conn.send({"type": "job",
                   "program": pack_pickle(_EvilPayload(marker)),
                   "config": pack_pickle(_EvilPayload(marker)),
                   "program_digest": "x", "config_digest": "x",
                   "die_after_steps": None})
        assert conn.recv() is None  # worker refused and closed
        thread.join(timeout=10)
        assert not marker.exists()
        conn.close()

    def test_keyed_worker_rejects_wrong_key(self):
        conn, thread = self._worker_thread(b"right-key")
        hello = conn.recv()
        conn.send({"type": "auth",
                   "mac": coordinator_mac(b"wrong-key", hello["nonce"]),
                   "nonce": make_nonce()})
        assert conn.recv() is None
        thread.join(timeout=10)
        conn.close()

    def test_keyless_worker_refuses_keyed_coordinator(self):
        conn, thread = self._worker_thread(None)
        hello = conn.recv()
        conn.send({"type": "auth",
                   "mac": coordinator_mac(b"some-key", hello["nonce"]),
                   "nonce": make_nonce()})
        assert conn.recv() is None  # fails loudly, no silent downgrade
        thread.join(timeout=10)
        conn.close()

    def test_listen_refuses_public_bind_without_key(self):
        with pytest.raises(ValueError, match="non-loopback"):
            run_listen("0.0.0.0", 0)

    def test_listen_on_loopback_needs_no_key(self):
        # Regression guard for the loopback classifier itself.
        from repro.service.worker import _is_loopback

        assert _is_loopback("127.0.0.1") and _is_loopback("localhost")
        assert _is_loopback("::1")
        assert not _is_loopback("0.0.0.0") and not _is_loopback("")
        assert not _is_loopback("10.0.0.2")

    def test_tcp_fleet_with_shared_key_parity(self):
        program = _program()
        base = run_campaign(program, CONFIG)
        key = "tcp-fleet-secret"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")])
        env[AUTHKEY_ENV] = key
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "shard-worker",
             "--listen", "127.0.0.1:0", "--once"],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", line)
            assert match, f"worker did not announce a port: {line!r}"
            address = (match.group(1), int(match.group(2)))
            sharded = run_campaign_sharded(
                program, CONFIG, shards=2, workers=[address],
                authkey=key.encode("utf-8"))
            assert report_fingerprint(sharded) == report_fingerprint(base)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_mismatched_keys_degrade_to_serial_parity(self):
        """A coordinator with the wrong key is refused by every worker;
        the campaign still completes (serial fallback), bit-identically."""
        program = _program()
        base = run_campaign(program, CONFIG)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")])
        env[AUTHKEY_ENV] = "worker-side-key"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "shard-worker",
             "--listen", "127.0.0.1:0", "--once"],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", line)
            assert match
            address = (match.group(1), int(match.group(2)))
            sharded = run_campaign_sharded(
                program, CONFIG, shards=2, workers=[address],
                authkey=b"coordinator-side-key")
            assert report_fingerprint(sharded) == report_fingerprint(base)
            assert sharded.resilience.fallback_chunks >= 1
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()


class TestChaosKillShardWorker:
    def test_killed_worker_reissues_bit_identically(self):
        program = _program()
        base = run_campaign(program, CONFIG)
        chaos = ChaosSpec(kill_shard_worker=0, kill_shard_after_steps=1)
        sharded = run_campaign_sharded(
            program, CONFIG, shards=4, chaos=chaos,
            resilience=ResilienceConfig(max_retries=3, backoff_base=0.01))
        assert report_fingerprint(sharded) == report_fingerprint(base)
        stats = sharded.resilience
        assert stats.shard_worker_deaths >= 1
        assert stats.retries >= 1 or stats.shard_steals >= 1

    def test_scenario_registered(self):
        from repro.injection.chaos import SCENARIOS

        assert "kill-shard-worker" in SCENARIOS


# ---------------------------------------------------------------------------
# Shard journals: interrupt, resume, offline merge, reconstruction
# ---------------------------------------------------------------------------


class TestShardJournals:
    def test_journals_written_per_shard(self, tmp_path):
        program = _program()
        journal = str(tmp_path / "c.journal")
        run_campaign_sharded(program, CONFIG, shards=3, journal_path=journal)
        files = existing_shard_journals(journal)
        assert [os.path.basename(path) for path in files] == [
            "c.journal.shard-000-of-003",
            "c.journal.shard-001-of-003",
            "c.journal.shard-002-of-003",
        ]

    @pytest.mark.parametrize("prune", [False, True])
    def test_interrupted_run_resumes_bit_identically(self, tmp_path, prune):
        """Interrupt simulation: crash-truncate one shard journal's tail,
        then ``resume`` -- only the lost steps recompute, and the merged
        report is bit-identical in both prune modes."""
        from repro.injection.chaos import truncate_journal_tail

        program = _program()
        config = CampaignConfig(
            max_injection_steps=8, max_sites_per_step=6,
            max_values_per_site=2, seed=20260808, prune=prune)
        base = run_campaign(program, config)
        journal = str(tmp_path / "c.journal")
        run_campaign_sharded(program, config, shards=3, journal_path=journal)
        victim = existing_shard_journals(journal)[1]
        truncate_journal_tail(victim, lines=2, torn_bytes=20)
        with pytest.warns(UserWarning):
            resumed = run_campaign_sharded(program, config, shards=3,
                                           journal_path=journal, resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(base)
        stats = resumed.resilience
        assert stats.resumed_steps == 6  # 8 total minus the 2 truncated
        assert stats.journaled_steps == 2  # only the lost tail re-ran

    def test_resume_across_shard_counts(self, tmp_path):
        """Shard count is execution topology, not campaign identity: a
        4-shard resume accepts 3-shard journals (and a single-process
        journal) interchangeably."""
        program = _program()
        base = run_campaign(program, CONFIG)
        journal = str(tmp_path / "c.journal")
        run_campaign_sharded(program, CONFIG, shards=3, journal_path=journal)
        resumed = run_campaign_sharded(program, CONFIG, shards=4,
                                       journal_path=journal, resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(base)
        assert resumed.resilience.resumed_steps == 8
        assert resumed.resilience.journaled_steps == 0

    def test_sharded_resume_reads_single_process_journal(self, tmp_path):
        program = _program()
        journal = str(tmp_path / "c.journal")
        base = run_campaign(program, CONFIG, journal_path=journal)
        resumed = run_campaign_sharded(program, CONFIG, shards=3,
                                       journal_path=journal, resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(base)
        assert resumed.resilience.resumed_steps == 8

    def test_offline_merge_feeds_plain_resume(self, tmp_path):
        program = _program()
        base = run_campaign(program, CONFIG)
        journal = str(tmp_path / "c.journal")
        run_campaign_sharded(program, CONFIG, shards=3, journal_path=journal)
        merged = str(tmp_path / "merged.journal")
        steps, corrupt = merge_journal_files(
            merged, existing_shard_journals(journal))
        assert (steps, corrupt) == (8, 0)
        resumed = run_campaign(program, CONFIG, journal_path=merged,
                               resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(base)
        assert resumed.resilience.resumed_steps == 8

    def test_merge_rejects_mismatched_campaigns(self, tmp_path):
        program = _program()
        journal_a = str(tmp_path / "a.journal")
        journal_b = str(tmp_path / "b.journal")
        run_campaign(program, CONFIG, journal_path=journal_a)
        other = CampaignConfig(max_injection_steps=8, max_sites_per_step=6,
                               max_values_per_site=2, seed=999)
        run_campaign(program, other, journal_path=journal_b)
        with pytest.raises(JournalMismatch, match="different campaign"):
            merge_journal_files(str(tmp_path / "out.journal"),
                                [journal_a, journal_b])

    def test_reconstruct_report_from_shard_journals(self, tmp_path):
        program = _program()
        base = run_campaign(program, CONFIG)
        journal = str(tmp_path / "c.journal")
        run_campaign_sharded(program, CONFIG, shards=3, journal_path=journal)
        report = reconstruct_report(program, CONFIG,
                                    existing_shard_journals(journal))
        assert report_fingerprint(report) == report_fingerprint(base)
        assert report.latency_buckets == base.latency_buckets

    def test_reconstruct_refuses_partial_coverage(self, tmp_path):
        program = _program()
        journal = str(tmp_path / "c.journal")
        run_campaign_sharded(program, CONFIG, shards=3, journal_path=journal)
        partial = existing_shard_journals(journal)[:2]
        with pytest.raises(ValueError, match="missing"):
            reconstruct_report(program, CONFIG, partial)


# ---------------------------------------------------------------------------
# The HTTP campaign service
# ---------------------------------------------------------------------------


@pytest.fixture
def service_url():
    from repro.service.server import http_server

    server, service = http_server("127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait_for_job(base, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, job = _get(f"{base}/jobs/{job_id}")
        if job["status"] in ("done", "error"):
            return job
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


class TestCampaignService:
    def test_healthz(self, service_url):
        status, body = _get(service_url + "/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_job_lifecycle_with_progress(self, service_url):
        status, body = _post(service_url + "/jobs", {
            "kernel": "adpcm",
            "config": {"max_injection_steps": 6, "max_sites_per_step": 6,
                       "max_values_per_site": 2, "seed": 3}})
        assert status == 202
        job = _wait_for_job(service_url, body["id"])
        assert job["status"] == "done", job.get("error")
        assert job["progress"] == {"done": 6, "total": 6}
        assert job["result"]["injections"] > 0
        assert "coverage" in job["result"]
        _, listing = _get(service_url + "/jobs")
        assert any(entry["id"] == body["id"] for entry in listing["jobs"])

    def test_sharded_job_through_service(self, service_url):
        status, body = _post(service_url + "/jobs", {
            "kernel": "adpcm", "shards": 2,
            "config": {"max_injection_steps": 6, "max_sites_per_step": 6,
                       "max_values_per_site": 2, "seed": 3}})
        assert status == 202
        job = _wait_for_job(service_url, body["id"])
        assert job["status"] == "done", job.get("error")
        assert job["result"]["summary"].startswith(
            str(job["result"]["injections"]))

    @pytest.mark.parametrize("payload,complaint", [
        ({"kernel": "bogus"}, "unknown kernel"),
        ({"kernel": "adpcm", "mode": "wat"}, "unknown mode"),
        ({"kernel": "adpcm", "shards": 0}, "shards"),
        ({"kernel": "adpcm", "config": {"nope": 1}}, "unknown config keys"),
        ({"kernel": "adpcm", "config": {"max_injection_steps": -1}},
         "invalid campaign config"),
    ])
    def test_submission_validation_is_400(self, service_url, payload,
                                          complaint):
        status, body = _post(service_url + "/jobs", payload)
        assert status == 400
        assert complaint in body["error"]

    def test_unknown_job_is_404(self, service_url):
        try:
            urllib.request.urlopen(service_url + "/jobs/job-999")
            raise AssertionError("expected a 404")
        except urllib.error.HTTPError as error:
            assert error.code == 404

    def test_metrics_exposition(self, service_url):
        with urllib.request.urlopen(service_url + "/metrics") as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
