"""Tests for masked-fault equivalence pruning (``repro.injection.prune``).

The pruning engine's contract is the same as every other campaign
accelerator in this repo: **bit-identical reports**.  Pruning may skip
executing a fault variant only when the def-use analysis *proves* its
outcome (provably-masked, or provably-detected at a known step), and the
replicated outcome must equal what a real run would produce.  These tests
pin that contract three ways:

* ground truth -- every classification the analysis emits on the small
  typed programs is checked against a real scalar execution of that
  fault (masked claims must mask with the full reference tail, detection
  claims must detect at exactly the predicted step);
* report parity -- pruned campaigns fingerprint-identical to unpruned
  ones on every workload kernel, every backend, process pools, and
  across journal resume in both directions (pruned journal resumed
  unpruned and vice versa);
* the safety nets -- the randomized audit re-executes pruned variants
  and hard-fails on a planted wrong outcome, the memo sidecar round-
  trips and silently ignores foreign files, and the PR-5 metrics
  counters account for every variant.
"""

import os

import pytest

from repro.core.faults import fault_sites, is_effective
from repro.core.machine import Outcome
from repro.core.semantics import OobPolicy
from repro.injection import CampaignConfig, config_digest, run_campaign
from repro.injection.campaign import (
    FaultResult,
    _reference_run,
    _run_faults,
)
from repro.injection.chaos import report_fingerprint
from repro.injection.prune import (
    PruneAuditError,
    _MEMO_TABLES,
    _fault_key,
    _identity,
    analysis_for,
    classify_fault,
    load_memo,
    memo_for,
    run_step_pruned,
    save_memo,
)
from repro.injection.values import representative_values, with_value
from repro.observe import MetricsRegistry, get_registry, set_registry
from repro.workloads import ALL_KERNELS, compile_kernel
from tests.helpers import countdown_loop_program, paper_store_program

#: Tiny-but-representative campaign (mirrors tests/test_vector_backend).
_TINY = dict(max_injection_steps=3, max_sites_per_step=4,
             max_values_per_site=1, seed=11, max_steps=500_000)


def _campaign(backend="compiled", *, prune, **overrides):
    params = dict(_TINY)
    params.update(overrides)
    return CampaignConfig(backend=backend, prune=prune, **params)


def _fresh_memo(program, config):
    """Drop any memo table cached for this campaign identity, so a test
    observes cold-start behavior regardless of what ran before it."""
    _MEMO_TABLES.pop(_identity(program, config), None)
    return memo_for(program, config)


class TestClassificationGroundTruth:
    """Every claim the analysis makes is checked against a real run."""

    @pytest.mark.parametrize("program_builder,name", [
        (paper_store_program, "paper-store"),
        (countdown_loop_program, "countdown"),
    ])
    def test_every_claim_matches_scalar_execution(self, program_builder,
                                                  name):
        program = program_builder()
        config = CampaignConfig(seed=5)
        reference = _reference_run(program, config)
        assert reference.trace.outcome is Outcome.HALTED
        analysis = analysis_for(program.boot(), config.oob_policy,
                                reference.trace.steps)
        assert analysis is not None, f"{name} must be analyzable"
        budget = reference.trace.steps + config.step_slack
        oob_trap = config.oob_policy is OobPolicy.TRAP
        masked_claims = detected_claims = 0
        for step in range(reference.trace.steps):
            base = reference.state_at(step)
            produced = reference.outputs_before[step]
            full_tail = tuple(reference.trace.outputs[produced:])
            for site in fault_sites(base):
                for value in representative_values(base, site, program,
                                                   None):
                    fault = with_value(site, value)
                    if not is_effective(base, fault):
                        continue
                    claim = classify_fault(analysis, fault, step, oob_trap)
                    if claim is None:
                        continue  # declined: always sound
                    outcome, = _run_faults(program, config, reference,
                                           budget, step, base, [fault])
                    _, result, outputs, steps = outcome
                    if claim == ("masked",):
                        masked_claims += 1
                        assert result is FaultResult.MASKED, \
                            (name, step, fault.describe())
                        assert outputs == full_tail
                        assert steps == reference.trace.steps - step
                    else:
                        detected_claims += 1
                        assert claim[0] == "det"
                        assert result is FaultResult.DETECTED, \
                            (name, step, fault.describe())
                        assert steps == claim[1] - step + 1
        # The analysis must actually bite on these programs, or the
        # parity tests below would be vacuous.
        assert masked_claims > 0
        assert detected_claims > 0


class TestKernelParity:
    """Pruned reports are bit-identical on every kernel and backend.

    The unpruned cross-backend equality (step == compiled == vector) is
    already pinned by tests/test_vector_backend and
    tests/test_exec_backend, so one unpruned fingerprint per kernel
    anchors all three pruned backends.
    """

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_pruned_matches_unpruned_on_kernel(self, kernel):
        program = compile_kernel(kernel, "ft").program
        plain = run_campaign(program, _campaign("step", prune=False))
        anchor = report_fingerprint(plain)
        for backend in ("step", "compiled", "vector"):
            pruned = run_campaign(program,
                                  _campaign(backend, prune=True))
            assert report_fingerprint(pruned) == anchor, (kernel, backend)
            assert pruned.latency_buckets == plain.latency_buckets

    def test_exhaustive_sweep_parity_including_latency_buckets(self):
        # No site cap: the regime pruning is built for.
        program = compile_kernel("vpr", "ft").program
        config = dict(max_injection_steps=4, max_sites_per_step=None,
                      max_values_per_site=2, seed=3)
        pruned = run_campaign(program, CampaignConfig(
            backend="vector", prune=True, **config))
        plain = run_campaign(program, CampaignConfig(
            backend="vector", prune=False, **config))
        assert report_fingerprint(pruned) == report_fingerprint(plain)
        assert pruned.latency_buckets == plain.latency_buckets
        assert pruned.latency_buckets  # the sweep must land latencies

    def test_pool_parity(self):
        program = compile_kernel("vpr", "ft").program
        pruned = run_campaign(program, _campaign(prune=True), jobs=2)
        plain = run_campaign(program, _campaign(prune=False))
        assert report_fingerprint(pruned) == report_fingerprint(plain)


class TestJournalInterop:
    """Pruned and unpruned runs share journal identity and resume each
    other, staying bit-identical either way."""

    def test_config_digest_ignores_prune_knobs(self):
        base = CampaignConfig(seed=7)
        assert config_digest(base) \
            == config_digest(CampaignConfig(seed=7, prune=False)) \
            == config_digest(CampaignConfig(seed=7, prune_audit=0.5))

    @pytest.mark.parametrize("first,second", [(True, False), (False, True)])
    def test_resume_across_prune_modes(self, tmp_path, first, second):
        from repro.injection.chaos import truncate_journal_tail

        program = countdown_loop_program()
        path = str(tmp_path / "c.journal")
        config = dict(seed=99, max_sites_per_step=5, max_values_per_site=2,
                      max_injection_steps=6)
        # Run journaled, "crash" by truncating the journal tail, then
        # resume with the opposite prune mode; the merged report must
        # equal an uninterrupted unpruned run.
        run_campaign(program, CampaignConfig(prune=first, **config),
                     journal_path=path)
        truncate_journal_tail(path)
        resumed = run_campaign(program, CampaignConfig(prune=second,
                                                       **config),
                               journal_path=path, resume=True)
        full = run_campaign(program, CampaignConfig(prune=False, **config))
        assert report_fingerprint(resumed) == report_fingerprint(full)


class TestMemo:
    def test_memo_hits_skip_re_execution(self):
        program = countdown_loop_program()
        config = _campaign(prune=True)
        _fresh_memo(program, config)
        registry = MetricsRegistry()
        set_registry(registry)
        try:
            run_campaign(program, config)
            cold = {(c["name"], tuple(sorted(c["labels"].items()))):
                    c["value"] for c in registry.as_dict()["counters"]}
            run_campaign(program, config)
            warm = {(c["name"], tuple(sorted(c["labels"].items()))):
                    c["value"] for c in registry.as_dict()["counters"]}
        finally:
            set_registry(None)
        key = ("prune_memo_hits_total", ())
        executed = ("prune_executed_total", ())
        assert cold.get(key, 0) == 0
        assert warm[key] > 0
        # Every second-run execution was replaced by a memo hit.
        assert warm[executed] == cold[executed]

    def test_sidecar_round_trip(self, tmp_path):
        program = countdown_loop_program()
        config = _campaign(prune=True)
        _fresh_memo(program, config)
        run_campaign(program, config)
        memo = memo_for(program, config)
        assert memo.table  # executions were remembered
        path = str(tmp_path / "c.journal.memo")
        save_memo(path, program, config)
        saved = dict(memo.table)
        fresh = _fresh_memo(program, config)
        assert not fresh.table
        assert load_memo(path, program, config) == len(saved)
        assert memo_for(program, config).table == saved

    def test_sidecar_identity_mismatch_loads_empty(self, tmp_path):
        program = countdown_loop_program()
        config = _campaign(prune=True)
        _fresh_memo(program, config)
        run_campaign(program, config)
        path = str(tmp_path / "c.journal.memo")
        save_memo(path, program, config)
        other = _campaign(prune=True, seed=12)
        _fresh_memo(program, other)
        assert load_memo(path, program, other) == 0
        assert not memo_for(program, other).table

    def test_missing_and_corrupt_sidecars_load_empty(self, tmp_path):
        program = countdown_loop_program()
        config = _campaign(prune=True)
        _fresh_memo(program, config)
        missing = str(tmp_path / "nope.memo")
        assert load_memo(missing, program, config) == 0
        garbage = tmp_path / "garbage.memo"
        garbage.write_text("not a frame\n{}\n")
        assert load_memo(str(garbage), program, config) == 0

    def test_journal_campaign_persists_sidecar(self, tmp_path):
        program = countdown_loop_program()
        config = _campaign(prune=True)
        _fresh_memo(program, config)
        path = str(tmp_path / "c.journal")
        run_campaign(program, config, journal_path=path)
        assert os.path.exists(path + ".memo")
        fresh = _fresh_memo(program, config)
        assert not fresh.table
        assert load_memo(path + ".memo", program, config) > 0


class TestAudit:
    def test_full_audit_passes_and_counts(self):
        program = countdown_loop_program()
        config = _campaign(prune=True, prune_audit=1.0)
        _fresh_memo(program, config)
        registry = MetricsRegistry()
        set_registry(registry)
        try:
            audited = run_campaign(program, config)
        finally:
            set_registry(None)
        plain = run_campaign(program, _campaign(prune=False))
        assert report_fingerprint(audited) == report_fingerprint(plain)
        counters = {c["name"]: c["value"]
                    for c in registry.as_dict()["counters"]}
        assert counters.get("prune_audit_runs_total", 0) > 0

    def test_audit_catches_planted_wrong_outcome(self):
        program = countdown_loop_program()
        config = _campaign(prune=True, prune_audit=1.0)
        _fresh_memo(program, config)
        run_campaign(program, config)  # populate the memo with truth
        memo = memo_for(program, config)
        assert memo.table
        # Corrupt one remembered outcome (off-by-one step count): the
        # next run replicates it from the memo, and the audit's
        # re-execution must catch the disagreement.
        key = next(iter(memo.table))
        memo.table[key] = [memo.table[key][0], memo.table[key][1],
                           memo.table[key][2] + 1]
        with pytest.raises(PruneAuditError, match="prune audit mismatch"):
            run_campaign(program, config)

    def test_audit_fraction_validated(self):
        with pytest.raises(ValueError, match="prune_audit"):
            CampaignConfig(prune_audit=1.5)
        with pytest.raises(ValueError, match="prune_audit"):
            CampaignConfig(prune_audit=-0.1)


class TestMetrics:
    def test_counters_account_for_every_variant(self):
        program = compile_kernel("vpr", "ft").program
        config = _campaign("vector", prune=True)
        _fresh_memo(program, config)
        registry = MetricsRegistry()
        set_registry(registry)
        try:
            report = run_campaign(program, config)
        finally:
            set_registry(None)
        counters = {c["name"]: c["value"]
                    for c in registry.as_dict()["counters"]}
        assert counters["prune_steps_total"] > 0
        pruned = counters.get("prune_pruned_variants_total", 0)
        executed = counters.get("prune_executed_total", 0)
        hits = counters.get("prune_memo_hits_total", 0)
        assert pruned > 0  # pruning must bite on a real kernel
        assert pruned + executed + hits == report.injections

    def test_scalar_screen_counter_labels_reasons(self):
        np = pytest.importorskip("numpy")  # noqa: F841 - vector backend
        from repro.core.faults import QueueZapValue, RegZap
        from repro.exec.vector import VMAX
        from repro.injection.batch import _screen_reason, run_step_batch

        # The reason taxonomy itself:
        assert _screen_reason(RegZap("r1", VMAX + 1), {"r1": 0}, 0) \
            == "value-range"
        assert _screen_reason(RegZap("r9", 1), {"r1": 0}, 0) == "site"
        assert _screen_reason(QueueZapValue(2, 1), {"r1": 0}, 1) == "site"
        assert _screen_reason(RegZap("r1", 1), {"r1": 0}, 0) is None

        # And the counter a screened lane increments, end to end.
        program = countdown_loop_program()
        config = CampaignConfig(backend="vector", prune=False)
        reference = _reference_run(program, config)
        budget = reference.trace.steps + config.step_slack
        base = reference.state_at(1)
        faults = [RegZap("r1", VMAX + 1),         # value-range screen
                  RegZap("r1", 12345)]            # vectorizable
        registry = MetricsRegistry()
        set_registry(registry)
        try:
            outcomes = run_step_batch(program, config, reference, budget,
                                      1, base, faults)
        finally:
            set_registry(None)
        assert outcomes is not None and len(outcomes) == 2
        screened = {c["labels"]["reason"]: c["value"]
                    for c in registry.as_dict()["counters"]
                    if c["name"] == "vector_scalar_screened_total"}
        assert screened == {"value-range": 1}


class TestStepDriver:
    def test_declines_without_faults_effect(self):
        # A non-halting reference (impossible here) aside, the driver
        # must at least decline cleanly on an empty fault list.
        program = paper_store_program()
        config = _campaign(prune=True)
        reference = _reference_run(program, config)
        budget = reference.trace.steps + config.step_slack
        base = reference.state_at(0)
        assert run_step_pruned(program, config, reference, budget, 0,
                               base, []) == []

    def test_outcomes_match_unpruned_run_faults(self):
        program = countdown_loop_program()
        config = _campaign(prune=True)
        _fresh_memo(program, config)
        reference = _reference_run(program, config)
        budget = reference.trace.steps + config.step_slack
        step = 3
        base = reference.state_at(step)
        faults = []
        for site in fault_sites(base):
            for value in representative_values(base, site, program, None):
                fault = with_value(site, value)
                if is_effective(base, fault):
                    faults.append(fault)
        assert faults
        pruned = run_step_pruned(program, config, reference, budget, step,
                                 base, list(faults))
        plain = _run_faults(program, config, reference, budget, step,
                            base, list(faults))
        assert pruned == plain

    def test_fault_key_covers_all_fault_kinds(self):
        from repro.core.faults import QueueZapAddress, QueueZapValue, RegZap

        assert _fault_key(4, RegZap("r1", 9)) == (4, "R", "r1", 9)
        assert _fault_key(4, QueueZapAddress(0, 9)) == (4, "QA", 0, 9)
        assert _fault_key(4, QueueZapValue(1, 9)) == (4, "QV", 1, 9)


class TestCli:
    EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples",
                            "programs")
    DOT_MWL = os.path.join(EXAMPLES, "dotproduct.mwl")

    def test_no_prune_flag_runs(self, capsys):
        from repro.cli import main

        assert main(["campaign", self.DOT_MWL, "--samples", "6",
                     "--no-prune"]) == 0
        assert "injections" in capsys.readouterr().out

    def test_pruned_cli_output_matches_no_prune(self, capsys):
        from repro.cli import main

        assert main(["campaign", self.DOT_MWL, "--samples", "6"]) == 0
        pruned_out = capsys.readouterr().out
        assert main(["campaign", self.DOT_MWL, "--samples", "6",
                     "--no-prune"]) == 0
        assert capsys.readouterr().out == pruned_out

    def test_prune_audit_flag_runs(self, capsys):
        from repro.cli import main

        assert main(["campaign", self.DOT_MWL, "--samples", "6",
                     "--prune-audit", "1.0"]) == 0

    def test_prune_audit_out_of_range_exits_2(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", self.DOT_MWL, "--prune-audit", "1.5"])
        assert excinfo.value.code == 2
        assert "between 0.0 and 1.0" in capsys.readouterr().err
