"""Backend parity: the compiled executor is an observational twin of step().

Every test here runs the same program through both execution backends and
demands *equality of everything observable*: outcome, output sequence,
step count, rule-name sequence, final register bank, store-queue contents,
memory, machine status and pending instruction register.  The sweeps cover
the places fusion could plausibly diverge -- faults landing between the
halves of a fused pair, step budgets that split chains mid-way, the RANDOM
out-of-bounds policy, and multi-fault schedules.
"""

from __future__ import annotations

import random

import pytest

from repro.core.faults import QueueZapAddress, QueueZapValue, RegZap
from repro.core.machine import Machine
from repro.core.semantics import KNOWN_RULES, OobPolicy
from repro.core.tracing import trace_execution
from repro.exec import (
    clear_exec_caches,
    compiled_for,
    exec_cache_stats,
    run_compiled,
    trace_events_compiled,
)
from repro.injection import CampaignConfig, run_campaign
from repro.injection.multifault import run_multifault_campaign
from repro.workloads import ALL_KERNELS, compile_kernel

#: The shortest-running kernel (loads, stores, arithmetic and both
#: transfer kinds) -- cheap enough to sweep exhaustively.
_SMALL = "vpr"


def _program(name=_SMALL, mode="ft"):
    return compile_kernel(name, mode).program


def _snapshot(state):
    return (dict(state.regs._regs), state.queue.pairs(),
            dict(state.memory), state.status, state.ir)


def _run_both(program, *, fault=None, at=0, faults=None, max_steps=3000,
              budget=1, policy=OobPolicy.TRAP):
    """Run under both backends; return the (identical) observables."""
    results = []
    for backend in ("step", "compiled"):
        state = program.boot()
        machine = Machine(state, oob_policy=policy, record_rules=True,
                          fault_budget=budget, backend=backend)
        try:
            trace = machine.run(max_steps=max_steps, fault=fault,
                                fault_at_step=at, faults=faults)
            observed = (trace.outcome, tuple(trace.outputs), trace.steps,
                        tuple(trace.rules))
        except Exception as exc:  # must raise identically on both backends
            observed = ("raised", type(exc).__name__, str(exc))
        results.append((observed, _snapshot(state)))
    assert results[0] == results[1], (fault, at, faults, max_steps)
    return results[0]


# ---------------------------------------------------------------------------
# Fault-free parity across the whole workload suite
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_KERNELS)
@pytest.mark.parametrize("mode", ("ft", "baseline", "swift"))
def test_fault_free_parity_all_kernels(name, mode):
    program = _program(name, mode)
    if name == "gzip":
        # The longest kernel: bound the run, parity must hold mid-flight.
        _run_both(program, max_steps=50_000)
    else:
        _run_both(program, max_steps=3_000_000)


@pytest.mark.parametrize("policy", (OobPolicy.TRAP, OobPolicy.RANDOM))
def test_fault_free_parity_policies(policy):
    _run_both(_program("vpr"), policy=policy, max_steps=50_000)


def test_rules_are_known():
    """Every rule the compiled backend emits is a semantics rule name."""
    state = _program("vpr").boot()
    compiled = compiled_for(state)
    assert compiled is not None
    trace = run_compiled(state, compiled, max_steps=20_000, rules=[])
    assert trace.rules and set(trace.rules) <= KNOWN_RULES


# ---------------------------------------------------------------------------
# Exhaustive fault sweep on a small program
# ---------------------------------------------------------------------------


def test_exhaustive_zap_sweep():
    """Every register zap and queue zap at every early step, both backends.

    This is the case fusion must not get wrong: the injection lands at
    exact small-step granularity, including *between* the two halves of
    what the compiled backend fuses into one dispatch.
    """
    program = _program()
    registers = sorted(program.boot().regs._regs)
    cases = 0
    for at in range(48):
        for reg in registers:
            for value in (0, 999):
                _run_both(program, fault=RegZap(reg, value), at=at)
                cases += 1
        for index in range(2):
            _run_both(program, fault=QueueZapAddress(index, 5), at=at)
            _run_both(program, fault=QueueZapValue(index, 1000), at=at)
            cases += 2
    assert cases > 1000


def test_step_budget_parity():
    """Budgets that split fused chains mid-way, incl. mid-instruction."""
    program = _program()
    for max_steps in (0, 1, 2, 3, 5, 17, 33, 101):
        _run_both(program, max_steps=max_steps)
        _run_both(program, fault=RegZap("pcG", 7), at=11,
                  max_steps=max_steps)


def test_multifault_schedule_parity():
    program = _program()
    registers = sorted(program.boot().regs._regs)
    rng = random.Random(7)
    for _ in range(60):
        count = rng.randint(2, 4)
        faults = sorted(
            ((rng.randint(0, 100), RegZap(rng.choice(registers),
                                          rng.randint(0, 99)))
             for _ in range(count)),
            key=lambda pair: pair[0],
        )
        _run_both(program, faults=faults, budget=count, max_steps=2500)


def test_multifault_engine_report_parity():
    program = _program("vpr")
    reports = [
        run_multifault_campaign(program, num_faults=2, samples=40, seed=9,
                                backend=backend)
        for backend in ("step", "compiled")
    ]
    assert reports[0].injections == reports[1].injections
    assert reports[0].counts == reports[1].counts


# ---------------------------------------------------------------------------
# Trace events and campaign reports
# ---------------------------------------------------------------------------


def test_trace_event_parity():
    program = _program("vpr")
    interpreter = trace_execution(program.boot(), max_steps=4001)
    compiled = trace_events_compiled(program.boot(), max_steps=4001)
    assert interpreter == compiled


def test_trace_execution_backend_param():
    program = _program()
    assert trace_execution(program.boot(), max_steps=500) == \
        trace_execution(program.boot(), max_steps=500, backend="compiled")
    with pytest.raises(ValueError):
        trace_execution(program.boot(), backend="jit")


def test_campaign_report_parity():
    """Bit-identical campaign reports, incl. per-record diagnostics."""
    program = _program("vpr")
    config = CampaignConfig(max_injection_steps=12, max_values_per_site=2,
                            max_sites_per_step=6, seed=321,
                            keep_records=True)
    reports = [run_campaign(program, config, backend=backend)
               for backend in ("step", "compiled")]
    first, second = reports
    assert first.injections == second.injections
    assert first.counts == second.counts
    assert first.violations == second.violations
    assert len(first.records) == len(second.records)
    for a, b in zip(first.records, second.records):
        assert (a.step, a.fault, a.result, a.latency) == \
            (b.step, b.fault, b.result, b.latency)


def test_unknown_backend_rejected():
    program = _program()
    with pytest.raises(Exception):
        Machine(program.boot(), backend="jit")
    config = CampaignConfig(max_injection_steps=2, max_sites_per_step=2,
                            max_values_per_site=1)
    with pytest.raises(Exception):
        run_campaign(program, config, backend="jit")


def test_program_cache_shared():
    """One compilation serves repeated runs of the same program."""
    clear_exec_caches()
    program = _program("vpr")
    for _ in range(3):
        state = program.boot()
        Machine(state, backend="compiled").run(max_steps=10_000)
    stats = exec_cache_stats()
    assert stats["programs"] == 1
