"""Tests for the fault-model boundary: multi-fault behavior.

The theorems assume a Single Event Upset.  These tests show the guarantee
is *tight*: a correlated pair of faults (one per color, same corrupt
value) defeats the comparisons and silently corrupts output -- exactly
the attack the SEU assumption rules out.
"""

import pytest

from repro.core import Machine, MachineStuck, Outcome, RegZap
from repro.injection import (
    correlated_double_fault,
    run_faults,
    run_multifault_campaign,
)
from repro.injection.campaign import CampaignConfig, FaultResult
from tests.helpers import paper_store_program


class TestFaultBudget:
    def test_default_budget_is_one(self):
        machine = Machine(paper_store_program().boot())
        machine.inject(RegZap("r1", 5))
        with pytest.raises(MachineStuck):
            machine.inject(RegZap("r2", 5))

    def test_explicit_budget_allows_more(self):
        machine = Machine(paper_store_program().boot(), fault_budget=2)
        machine.inject(RegZap("r1", 5))
        machine.inject(RegZap("r2", 5))  # no exception

    def test_run_with_fault_schedule(self):
        program = paper_store_program()
        machine = Machine(program.boot(), fault_budget=2)
        trace = machine.run(faults=[(2, RegZap("r1", 9)),
                                    (4, RegZap("r2", 9))])
        assert machine.faults_used == 2


class TestCorrelatedDoubleFault:
    def test_single_fault_is_always_caught(self):
        # Control: one half of the pair alone is detected.
        program = paper_store_program()
        trace = run_faults(program, [(4, RegZap("r1", 666))])
        assert trace.outcome is Outcome.FAULT_DETECTED

    # Step anatomy of the store example (fetch/execute interleaved):
    # step 1 executes mov r1, step 5 executes stG (the green value enters
    # the queue), step 7 executes mov r3, step 11 executes stB.
    def test_correlated_pair_corrupts_silently(self):
        # Strike the green value copy (r1) *before* the green store (so
        # the corrupt value enters the queue) and the blue copy (r3) with
        # the same wrong value before the blue store's compare: every
        # check passes and corrupt data reaches the output device.
        program = paper_store_program()
        schedule = correlated_double_fault("r1", "r3", 666,
                                           green_at_step=4, blue_at_step=8)
        trace = run_faults(program, schedule)
        assert trace.outcome is Outcome.HALTED  # not detected!
        assert trace.outputs == [(256, 666)]  # silent corruption

    def test_correlated_address_pair_also_corrupts(self):
        program = paper_store_program()
        # Both address copies redirected to another (typed) location.
        program.initial_memory[257] = 0
        from repro.types import INT, RefType

        program.data_psi[257] = RefType(INT)
        schedule = correlated_double_fault("r2", "r4", 257,
                                           green_at_step=4, blue_at_step=10)
        trace = run_faults(program, schedule)
        assert trace.outcome is Outcome.HALTED
        assert trace.outputs == [(257, 5)]  # right value, wrong place

    def test_uncorrelated_pair_is_detected(self):
        program = paper_store_program()
        schedule = [(4, RegZap("r1", 666)), (8, RegZap("r3", 667))]
        trace = run_faults(program, schedule)
        assert trace.outcome is Outcome.FAULT_DETECTED

    def test_queue_plus_register_pair_corrupts(self):
        # The same attack through the Q-zap rule: corrupt the queued value
        # and the blue copy identically.
        from repro.core import QueueZapValue

        program = paper_store_program()
        schedule = [(6, QueueZapValue(0, 666)), (8, RegZap("r3", 666))]
        trace = run_faults(program, schedule)
        assert trace.outcome is Outcome.HALTED
        assert trace.outputs == [(256, 666)]


class TestMultifaultCampaign:
    def test_single_fault_sampling_matches_theorem(self):
        # With num_faults=1 the sampled campaign must find no violations
        # (it is a random subset of the exhaustive Theorem 4 campaign).
        program = paper_store_program()
        report = run_multifault_campaign(program, num_faults=1,
                                         samples=200, seed=3)
        assert report.injections > 0
        assert not report.violations

    def test_double_fault_sampling_reports_results(self):
        program = paper_store_program()
        report = run_multifault_campaign(program, num_faults=2,
                                         samples=300, seed=3)
        assert report.injections > 0
        total = sum(report.counts.values())
        assert total == report.injections

    def test_keep_records(self):
        program = paper_store_program()
        config = CampaignConfig(keep_records=True)
        report = run_multifault_campaign(program, num_faults=2, samples=50,
                                         seed=5, config=config)
        assert len(report.records) == report.injections
