"""Tests for the fault-model boundary: multi-fault behavior.

The theorems assume a Single Event Upset.  These tests show the guarantee
is *tight*: a correlated pair of faults (one per color, same corrupt
value) defeats the comparisons and silently corrupts output -- exactly
the attack the SEU assumption rules out.
"""

import pytest

from repro.core import Machine, MachineStuck, Outcome, RegZap
from repro.injection import (
    correlated_double_fault,
    run_faults,
    run_multifault_campaign,
)
from repro.injection.campaign import CampaignConfig, FaultResult
from tests.helpers import paper_store_program


class TestFaultBudget:
    def test_default_budget_is_one(self):
        machine = Machine(paper_store_program().boot())
        machine.inject(RegZap("r1", 5))
        with pytest.raises(MachineStuck):
            machine.inject(RegZap("r2", 5))

    def test_explicit_budget_allows_more(self):
        machine = Machine(paper_store_program().boot(), fault_budget=2)
        machine.inject(RegZap("r1", 5))
        machine.inject(RegZap("r2", 5))  # no exception

    def test_run_with_fault_schedule(self):
        program = paper_store_program()
        machine = Machine(program.boot(), fault_budget=2)
        trace = machine.run(faults=[(2, RegZap("r1", 9)),
                                    (4, RegZap("r2", 9))])
        assert machine.faults_used == 2


class TestCorrelatedDoubleFault:
    def test_single_fault_is_always_caught(self):
        # Control: one half of the pair alone is detected.
        program = paper_store_program()
        trace = run_faults(program, [(4, RegZap("r1", 666))])
        assert trace.outcome is Outcome.FAULT_DETECTED

    # Step anatomy of the store example (fetch/execute interleaved):
    # step 1 executes mov r1, step 5 executes stG (the green value enters
    # the queue), step 7 executes mov r3, step 11 executes stB.
    def test_correlated_pair_corrupts_silently(self):
        # Strike the green value copy (r1) *before* the green store (so
        # the corrupt value enters the queue) and the blue copy (r3) with
        # the same wrong value before the blue store's compare: every
        # check passes and corrupt data reaches the output device.
        program = paper_store_program()
        schedule = correlated_double_fault("r1", "r3", 666,
                                           green_at_step=4, blue_at_step=8)
        trace = run_faults(program, schedule)
        assert trace.outcome is Outcome.HALTED  # not detected!
        assert trace.outputs == [(256, 666)]  # silent corruption

    def test_correlated_address_pair_also_corrupts(self):
        program = paper_store_program()
        # Both address copies redirected to another (typed) location.
        program.initial_memory[257] = 0
        from repro.types import INT, RefType

        program.data_psi[257] = RefType(INT)
        schedule = correlated_double_fault("r2", "r4", 257,
                                           green_at_step=4, blue_at_step=10)
        trace = run_faults(program, schedule)
        assert trace.outcome is Outcome.HALTED
        assert trace.outputs == [(257, 5)]  # right value, wrong place

    def test_uncorrelated_pair_is_detected(self):
        program = paper_store_program()
        schedule = [(4, RegZap("r1", 666)), (8, RegZap("r3", 667))]
        trace = run_faults(program, schedule)
        assert trace.outcome is Outcome.FAULT_DETECTED

    def test_queue_plus_register_pair_corrupts(self):
        # The same attack through the Q-zap rule: corrupt the queued value
        # and the blue copy identically.
        from repro.core import QueueZapValue

        program = paper_store_program()
        schedule = [(6, QueueZapValue(0, 666)), (8, RegZap("r3", 666))]
        trace = run_faults(program, schedule)
        assert trace.outcome is Outcome.HALTED
        assert trace.outputs == [(256, 666)]


class TestBackendRegistry:
    """Regression: the backend check was a hardcoded ``("step",
    "compiled")`` tuple, rejecting the registered ``vector`` backend (and
    any future registry entry) that every other entry point accepts."""

    def test_every_registered_backend_accepted(self):
        from repro.exec import BACKENDS

        program = paper_store_program()
        for backend in BACKENDS:
            report = run_multifault_campaign(program, num_faults=1,
                                             samples=40, seed=7,
                                             backend=backend)
            assert report.injections > 0, backend

    def test_vector_backend_matches_machine_backends(self):
        # Campaign-only engines resolve to the compiled machine engine
        # for per-schedule runs; the report is identical either way.
        program = paper_store_program()
        reports = {
            backend: run_multifault_campaign(program, num_faults=2,
                                             samples=60, seed=11,
                                             backend=backend)
            for backend in ("step", "compiled", "vector")
        }
        step = reports["step"]
        for backend, report in reports.items():
            assert report.injections == step.injections, backend
            assert report.counts == step.counts, backend

    def test_unknown_backend_rejected_with_registry_wording(self):
        program = paper_store_program()
        with pytest.raises(ValueError, match="unknown backend"):
            run_multifault_campaign(program, samples=1, backend="bogus")


class TestSampleAccounting:
    """Regression: a sample whose chosen site yielded no replacement
    values was silently dropped (``report.injections < samples`` with no
    accounting) instead of being resampled and, as a last resort,
    counted."""

    def test_empty_site_is_resampled(self, monkeypatch):
        # Starve the sampler once per fault slot: the first
        # representative_values call of every slot returns nothing, so
        # the old code shipped short schedules and dropped samples.
        from repro.injection import multifault as mf

        real = mf.representative_values
        calls = {"n": 0}

        def flaky(state, site, program, rng=None, **kwargs):
            calls["n"] += 1
            if calls["n"] % 2 == 1:
                return []
            return real(state, site, program, rng, **kwargs)

        monkeypatch.setattr(mf, "representative_values", flaky)
        program = paper_store_program()
        samples = 25
        report = run_multifault_campaign(program, num_faults=1,
                                         samples=samples, seed=13)
        assert report.injections == samples
        assert report.discarded_samples == 0

    def test_exhausted_retries_are_counted_not_silent(self, monkeypatch):
        from repro.injection import multifault as mf

        monkeypatch.setattr(mf, "representative_values",
                            lambda *args, **kwargs: [])
        program = paper_store_program()
        samples = 9
        report = run_multifault_campaign(program, num_faults=2,
                                         samples=samples, seed=17)
        assert report.injections == 0
        assert report.discarded_samples == samples
        assert report.injections + report.discarded_samples == samples

    def test_clean_runs_report_zero_discards(self):
        program = paper_store_program()
        report = run_multifault_campaign(program, num_faults=2,
                                         samples=30, seed=19)
        assert report.injections == 30
        assert report.discarded_samples == 0


class TestMultifaultCampaign:
    def test_single_fault_sampling_matches_theorem(self):
        # With num_faults=1 the sampled campaign must find no violations
        # (it is a random subset of the exhaustive Theorem 4 campaign).
        program = paper_store_program()
        report = run_multifault_campaign(program, num_faults=1,
                                         samples=200, seed=3)
        assert report.injections > 0
        assert not report.violations

    def test_double_fault_sampling_reports_results(self):
        program = paper_store_program()
        report = run_multifault_campaign(program, num_faults=2,
                                         samples=300, seed=3)
        assert report.injections > 0
        total = sum(report.counts.values())
        assert total == report.injections

    def test_keep_records(self):
        program = paper_store_program()
        config = CampaignConfig(keep_records=True)
        report = run_multifault_campaign(program, num_faults=2, samples=50,
                                         seed=5, config=config)
        assert len(report.records) == report.injections
