"""Tests for the optimization passes: copy propagation and dead code.

Soundness is established two ways: direct structural assertions on small
CFGs, and (the strong form) the existing differential tests, which run the
optimized pipeline on every workload kernel.
"""

import pytest

from repro.compiler import (
    CFG,
    IBin,
    IConst,
    ILoad,
    IStore,
    TBranchZero,
    VReg,
    compile_source,
    eliminate_dead_code,
    propagate_copies,
)
from repro.compiler.ir import Block, TGoto, THalt


def v(i):
    return VReg(i)


def single_block(ops, terminator=None):
    cfg = CFG(entry="a")
    cfg.add(Block("a", ops, terminator or THalt()))
    return cfg


class TestCopyPropagation:
    def test_simple_copy_forwarded(self):
        cfg = single_block([
            IConst(v(1), 7),
            IBin("add", v(2), v(1), 0),   # v2 = copy of v1
            IBin("mul", v(3), v(2), v(2)),
        ])
        rewrites = propagate_copies(cfg)
        assert rewrites > 0
        assert cfg.block("a").ops[2] == IBin("mul", v(3), v(1), v(1))

    def test_copy_chain_resolved(self):
        cfg = single_block([
            IBin("add", v(2), v(1), 0),
            IBin("add", v(3), v(2), 0),
            IStore(v(3), v(3)),
        ])
        propagate_copies(cfg)
        assert cfg.block("a").ops[2] == IStore(v(1), v(1))

    def test_redefinition_kills_alias(self):
        cfg = single_block([
            IBin("add", v(2), v(1), 0),   # v2 = v1
            IConst(v(1), 99),             # v1 redefined!
            IStore(v(2), v(2)),           # must NOT become v1
        ])
        propagate_copies(cfg)
        assert cfg.block("a").ops[2] == IStore(v(2), v(2))

    def test_copy_target_redefinition_kills_alias(self):
        cfg = single_block([
            IBin("add", v(2), v(1), 0),
            IConst(v(2), 5),              # v2 redefined: alias dead
            IStore(v(2), v(2)),
        ])
        propagate_copies(cfg)
        assert cfg.block("a").ops[2] == IStore(v(2), v(2))

    def test_branch_condition_propagated(self):
        cfg = CFG(entry="a")
        cfg.add(Block("a", [IBin("add", v(2), v(1), 0)],
                      TBranchZero(v(2), "b", "b")))
        cfg.add(Block("b", [], THalt()))
        propagate_copies(cfg)
        assert cfg.block("a").terminator.cond == v(1)

    def test_loads_propagate_addresses(self):
        cfg = single_block([
            IBin("add", v(2), v(1), 0),
            ILoad(v(3), v(2)),
        ])
        propagate_copies(cfg)
        assert cfg.block("a").ops[1] == ILoad(v(3), v(1))


class TestDeadCodeElimination:
    def test_unused_constant_removed(self):
        cfg = single_block([
            IConst(v(1), 7),
            IConst(v(2), 8),      # dead
            IStore(v(1), v(1)),
        ])
        removed = eliminate_dead_code(cfg)
        assert removed == 1
        assert len(cfg.block("a").ops) == 2

    def test_cascading_removal(self):
        cfg = single_block([
            IConst(v(1), 7),
            IBin("add", v(2), v(1), 3),   # only used by dead v3
            IBin("mul", v(3), v(2), v(2)),  # dead
        ])
        removed = eliminate_dead_code(cfg)
        assert removed == 3
        assert cfg.block("a").ops == []

    def test_stores_never_removed(self):
        cfg = single_block([
            IConst(v(1), 7),
            IStore(v(1), v(1)),
        ])
        assert eliminate_dead_code(cfg) == 0

    def test_live_out_values_kept(self):
        cfg = CFG(entry="a")
        cfg.add(Block("a", [IConst(v(1), 7)], TGoto("b")))
        cfg.add(Block("b", [IStore(v(1), v(1))], THalt()))
        assert eliminate_dead_code(cfg) == 0

    def test_loop_carried_values_kept(self):
        cfg = CFG(entry="a")
        cfg.add(Block("a", [IConst(v(1), 3)], TGoto("head")))
        cfg.add(Block("head", [IBin("sub", v(1), v(1), 1)],
                      TBranchZero(v(1), "exit", "head")))
        cfg.add(Block("exit", [IStore(v(1), v(1))], THalt()))
        assert eliminate_dead_code(cfg) == 0


class TestOptimizationEndToEnd:
    SOURCE = """
    array out[4];
    var a = 3;
    var b = a;        // copy
    var unused = a * b;
    var i = 0;
    while (i < 2) { out[i] = b * 7; i = i + 1; }
    """

    def test_optimized_code_is_smaller(self):
        unopt = compile_source(self.SOURCE, mode="ft", optimize=False)
        opt = compile_source(self.SOURCE, mode="ft", optimize=True)
        assert opt.program.size < unopt.program.size

    def test_optimized_code_still_typechecks(self):
        compile_source(self.SOURCE, mode="ft", optimize=True).program.check()

    def test_semantics_preserved(self):
        from repro.core import run_to_completion

        unopt = compile_source(self.SOURCE, mode="baseline", optimize=False)
        opt = compile_source(self.SOURCE, mode="baseline", optimize=True)
        assert run_to_completion(unopt.program.boot()).outputs == \
            run_to_completion(opt.program.boot()).outputs
