"""The fuzzer itself: generator validity, printer round-trip, oracle,
minimizer, corpus persistence, runner, CLI -- plus replay of every
committed regression reproducer (the anti-regression ratchet)."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.compiler import compile_source
from repro.fuzz import (
    Corpus,
    FuzzConfig,
    OracleConfig,
    check_program,
    generate_program,
    minimize_program,
    run_fuzz,
)
from repro.fuzz.generator import PROFILES, FuzzProgram, generate_mwl
from repro.lang import check_source, format_source, parse_source

REGRESSIONS = Path(__file__).resolve().parent.parent / "corpus" / "regressions"

#: One light oracle for the whole module (programs are tiny; the default
#: knobs are already small, so this is purely about shared construction).
ORACLE = OracleConfig()


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_deterministic(self):
        for index in range(6):
            first = generate_program(11, index)
            second = generate_program(11, index)
            assert first == second

    def test_distinct_across_indices(self):
        sources = {generate_program(11, index).source for index in range(12)}
        assert len(sources) > 8

    def test_mwl_programs_parse_and_check(self):
        import random

        for profile, config in sorted(PROFILES.items()):
            for trial in range(4):
                rng = random.Random(f"validity:{profile}:{trial}")
                source = generate_mwl(rng, config)
                check_source(parse_source(source))

    def test_tal_programs_typecheck(self):
        from repro.asm import parse_program

        checked = 0
        for index in range(40):
            program = generate_program(5, index, kind="tal")
            parsed = parse_program(program.source)
            parsed.check()
            checked += 1
        assert checked == 40

    def test_profiles_cover_language_features(self):
        # Across a modest sample the generator must actually exercise
        # loops, branches, calls and multiple arrays -- the knobs the
        # tentpole promises beyond the 4-knob workload generator.
        saw = {"while": False, "if": False, "fn": False}
        arrays = 0
        for index in range(30):
            program = generate_program(13, index, kind="mwl")
            for feature in saw:
                saw[feature] = saw[feature] or f"{feature} " in program.source
            arrays = max(arrays, program.source.count("array "))
        assert all(saw.values()), saw
        assert arrays >= 2


# ---------------------------------------------------------------------------
# Pretty-printer round-trip
# ---------------------------------------------------------------------------


class TestPrinterRoundTrip:
    def test_parse_format_parse_is_identity(self):
        for index in range(25):
            program = generate_program(17, index, kind="mwl")
            ast = parse_source(program.source)
            rendered = format_source(ast)
            assert parse_source(rendered) == ast

    def test_formatted_source_still_checks(self):
        for index in range(10):
            program = generate_program(19, index, kind="mwl")
            check_source(parse_source(format_source(
                parse_source(program.source))))


# ---------------------------------------------------------------------------
# Oracle
# ---------------------------------------------------------------------------


class TestOracle:
    def test_sample_of_generated_programs_passes(self):
        for index in range(10):
            program = generate_program(23, index)
            verdict = check_program(program, ORACLE)
            assert verdict.ok, (program.name, verdict.stage, verdict.detail)
            assert verdict.injections > 0
            # Backend x prune x build matrix all collapsed to fingerprints.
            assert len(verdict.fingerprints) >= 4

    def test_flags_parse_failure(self):
        bad = FuzzProgram(name="bad", kind="mwl", source="var = ;\n")
        verdict = check_program(bad, ORACLE)
        assert not verdict.ok
        assert verdict.stage == "parse"

    def test_flags_semantic_failure(self):
        bad = FuzzProgram(name="bad", kind="mwl",
                          source="array a0[4];\na0[0] = nosuch;\n")
        verdict = check_program(bad, ORACLE)
        assert (verdict.ok, verdict.stage) == (False, "check-source")

    def test_flags_tal_type_error(self):
        # A store through a plain int register: well-formed assembly the
        # checker must reject (and the oracle must classify as such).
        source = (
            ".gprs 8\n"
            ".data\n"
            "  word 256 = 0\n"
            "\n"
            ".code\n"
            "main:\n"
            "  .pre [m: mem] { rest: zero } mem m\n"
            "  mov r1, G 7\n"
            "  mov r2, B 7\n"
            "  stG r1, r1\n"
            "  stB r2, r2\n"
            "  halt\n"
        )
        bad = FuzzProgram(name="bad", kind="tal", source=source)
        verdict = check_program(bad, ORACLE)
        assert (verdict.ok, verdict.stage) == (False, "typecheck")


# ---------------------------------------------------------------------------
# Minimizer
# ---------------------------------------------------------------------------


def _oracle_stage_predicate(program, stage):
    def predicate(source):
        candidate = dataclasses.replace(program, source=source)
        return check_program(candidate, ORACLE).stage == stage
    return predicate


class TestMinimizer:
    def test_planted_mwl_divergence_shrinks_and_still_fails(self):
        # Bury one semantic error (an undeclared name) inside a real
        # generated program: the minimizer must strip the noise and keep
        # the failure.
        base = generate_program(29, 0, kind="mwl", profile="mixed")
        planted = dataclasses.replace(
            base, source=base.source + "a0[0] = planted_undefined;\n")
        verdict = check_program(planted, ORACLE)
        assert (verdict.ok, verdict.stage) == (False, "check-source")

        # Pin the *specific* diagnostic, not just the stage: a stage-only
        # predicate may slide onto an unrelated error of the same kind.
        def predicate(source):
            candidate = dataclasses.replace(planted, source=source)
            result = check_program(candidate, ORACLE)
            return result.stage == "check-source" \
                and "planted_undefined" in result.detail

        result = minimize_program(planted, predicate)
        assert result.reduced
        minimized = result.program
        assert len(minimized.source) < len(planted.source) / 2
        assert "planted_undefined" in minimized.source
        final = check_program(minimized, ORACLE)
        assert (final.ok, final.stage) == (False, "check-source")

    def test_planted_tal_type_error_shrinks_by_lines(self):
        lines = [
            ".gprs 8",
            ".data",
            "  word 256 = 0",
            "",
            ".code",
            "main:",
            "  .pre [m: mem] { rest: zero } mem m",
        ]
        # Noise: replicated constant moves the failure does not need.
        for i in range(1, 4):
            lines.append(f"  mov r{2 * i - 1}, G {i}")
            lines.append(f"  mov r{2 * i}, B {i}")
        lines += ["  stG r1, r1", "  stB r2, r2", "  halt"]
        planted = FuzzProgram(name="planted", kind="tal",
                              source="\n".join(lines) + "\n")
        verdict = check_program(planted, ORACLE)
        assert (verdict.ok, verdict.stage) == (False, "typecheck")

        result = minimize_program(
            planted, _oracle_stage_predicate(planted, "typecheck"))
        assert result.reduced
        assert len(result.source.splitlines()) < len(lines)
        final = check_program(result.program, ORACLE)
        assert (final.ok, final.stage) == (False, "typecheck")

    def test_no_reduction_when_predicate_never_holds(self):
        program = generate_program(29, 1, kind="mwl")
        result = minimize_program(program, lambda source: False)
        assert not result.reduced
        assert result.source == program.source


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------


class TestCorpus:
    def test_save_and_reload_round_trip(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        program = generate_program(31, 0, kind="mwl")
        corpus.save("failures", program, {"stage": "differential"})
        corpus.save("minimized", dataclasses.replace(
            program, name=f"{program.name}_min"), {"stage": "differential"})
        entries = corpus.entries()
        assert [entry.category for entry in entries] == \
            ["failures", "minimized"]
        assert entries[0].program.source == program.source
        assert entries[0].meta["stage"] == "differential"
        assert entries[0].program.kind == "mwl"
        assert len(corpus) == 2

    def test_rejects_unknown_category(self, tmp_path):
        corpus = Corpus(tmp_path)
        with pytest.raises(ValueError, match="category"):
            corpus.save("nonsense", generate_program(31, 1))

    def test_committed_regressions_replay_clean(self):
        # Every reproducer the fuzzer ever minimized must keep passing
        # the full oracle: a failure here means a fixed bug came back.
        entries = Corpus(REGRESSIONS).entries()
        assert entries, "committed regression corpus is missing"
        for entry in entries:
            verdict = check_program(entry.program, ORACLE)
            assert verdict.ok, (
                f"regression {entry.path.name} fails again at "
                f"{verdict.stage}: {verdict.detail}")


class TestFrontendStoreAddressRegression:
    """The first bug the fuzzer found: a store whose value inlines a
    call containing a branch used to compute its address *before* the
    branch, so the FT build failed its own type check at the stG in the
    join block ("register ... is not a reference")."""

    def test_repro_compiles_and_typechecks(self):
        source = (REGRESSIONS / "minimized" /
                  "store_value_call_branch.mwl").read_text(encoding="utf-8")
        compile_source(source, mode="ft").program.check()

    def test_branchy_index_and_value_still_typecheck(self):
        # Same shape, index side: the address arithmetic must land in the
        # store's own block no matter where the operand expressions went.
        source = (
            "array a0[4];\n"
            "fn pick(p0) {\n"
            "    var r = 2;\n"
            "    if (p0) {\n"
            "        r = 1;\n"
            "    }\n"
            "    return r;\n"
            "}\n"
            "a0[pick(0)] = pick(1);\n"
        )
        compiled = compile_source(source, mode="ft")
        compiled.program.check()
        verdict = check_program(
            FuzzProgram(name="branchy", kind="mwl", source=source), ORACLE)
        assert verdict.ok, (verdict.stage, verdict.detail)


# ---------------------------------------------------------------------------
# Runner + CLI
# ---------------------------------------------------------------------------


class TestRunner:
    def test_clean_run_reports_and_persists_manifest(self, tmp_path):
        config = FuzzConfig(programs=6, seed=37,
                            corpus_dir=str(tmp_path / "corpus"))
        report = run_fuzz(config)
        assert report.programs == 6
        assert report.ok == 6
        assert report.by_stage == {"ok": 6}
        assert not report.failures
        manifest = json.loads(
            (tmp_path / "corpus" / "manifest_37.json").read_text())
        assert manifest["ok"] == 6
        assert manifest["failed"] == 0

    def test_failure_is_minimized_and_persisted(self, tmp_path, monkeypatch):
        bad = FuzzProgram(
            name="planted", kind="mwl",
            source="array a0[4];\na0[0] = 1;\na0[1] = planted_bad;\n")

        import repro.fuzz.runner as runner_module
        real_generate = runner_module.generate_program

        def planted_generate(seed, index=0, **kwargs):
            if index == 1:
                return bad
            return real_generate(seed, index, **kwargs)

        monkeypatch.setattr(runner_module, "generate_program",
                            planted_generate)
        config = FuzzConfig(programs=3, seed=41,
                            corpus_dir=str(tmp_path / "corpus"),
                            max_failures=1)
        report = run_fuzz(config)
        assert report.failed == 1
        assert report.stopped_early
        failure = report.failures[0]
        assert failure.stage == "check-source"
        assert failure.minimized_source is not None
        assert "planted_bad" in failure.minimized_source
        assert len(failure.minimized_source) < len(bad.source)
        corpus = Corpus(tmp_path / "corpus")
        categories = {entry.category for entry in corpus.entries()}
        assert categories == {"failures", "minimized"}

    def test_config_validation(self):
        with pytest.raises(ValueError, match="programs"):
            FuzzConfig(programs=0)
        with pytest.raises(ValueError, match="profile"):
            FuzzConfig(profile="nonsense")
        with pytest.raises(ValueError, match="kind"):
            FuzzConfig(kind="c")
        with pytest.raises(ValueError, match="tal_fraction"):
            FuzzConfig(tal_fraction=1.5)

    def test_seeded_runs_are_reproducible(self):
        first = run_fuzz(FuzzConfig(programs=4, seed=43)).summary()
        second = run_fuzz(FuzzConfig(programs=4, seed=43)).summary()
        first.pop("elapsed_seconds")
        second.pop("elapsed_seconds")
        assert first == second


class TestCli:
    def test_fuzz_clean_exit_zero(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["fuzz", "--programs", "4", "--seed", "47",
                     "--corpus", str(tmp_path / "corpus")])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 program(s)" in out
        assert "ok: 4" in out
        assert (tmp_path / "corpus" / "manifest_47.json").is_file()

    def test_fuzz_metrics_snapshot(self, tmp_path):
        from repro.cli import main

        metrics = tmp_path / "metrics.json"
        code = main(["fuzz", "--programs", "2", "--seed", "53",
                     "--metrics", str(metrics)])
        assert code == 0
        snapshot = json.loads(metrics.read_text())
        names = {entry["name"] for entry in snapshot["metrics"]["counters"]}
        assert "fuzz.programs" in names
