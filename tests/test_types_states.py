"""Tests for machine-state typing (Figure 8) and substitution inference."""

import pytest

from repro.core import Color, Halt, MachineState, Mov, RegisterFile, StoreQueue, blue, green
from repro.core.registers import PC_B, PC_G
from repro.statics import IntConst, Subst, Var, memory_to_expr, var
from repro.types import (
    INT,
    RefType,
    RegType,
    StateTypeError,
    check_state,
    infer_closing_subst,
)
from tests.helpers import entry_context

INT_REF = RefType(INT)
G, B = Color.GREEN, Color.BLUE


def make_state(memory=None, queue=(), code=None, num_gprs=8):
    return MachineState(
        regs=RegisterFile.initial(1, num_gprs=num_gprs),
        code=code or {1: Halt()},
        memory=dict(memory or {}),
        queue=StoreQueue(queue),
    )


def mem_subst(state):
    return Subst({"m": memory_to_expr(state.memory)})


class TestStateTyping:
    def test_boot_state_is_well_typed(self):
        state = make_state()
        check_state({}, state.code, entry_context(), mem_subst(state), state)

    def test_memory_must_match_description(self):
        state = make_state(memory={256: 5})
        psi = {256: INT_REF}
        # Description says 256 holds 4: mismatch.
        wrong = Subst({"m": memory_to_expr({256: 4})})
        with pytest.raises(StateTypeError):
            check_state(psi, state.code, entry_context(), wrong, state)

    def test_untyped_data_address_rejected(self):
        state = make_state(memory={256: 5})
        with pytest.raises(StateTypeError):
            check_state({}, state.code, entry_context(), mem_subst(state),
                        state)

    def test_register_value_must_match_gamma(self):
        state = make_state()
        state.regs.set("r1", green(9))  # Gamma says (G, int, 0)
        with pytest.raises(StateTypeError):
            check_state({}, state.code, entry_context(), mem_subst(state),
                        state)

    def test_zap_excuses_the_corrupted_color_only(self):
        state = make_state()
        state.regs.set("r1", green(9))
        check_state({}, state.code, entry_context(), mem_subst(state), state,
                    zap=G)
        with pytest.raises(StateTypeError):
            check_state({}, state.code, entry_context(), mem_subst(state),
                        state, zap=B)

    def test_pc_disagreement_rejected_without_zap(self):
        state = make_state()
        state.regs.set(PC_B, blue(7))
        with pytest.raises(StateTypeError):
            check_state({}, state.code, entry_context(), mem_subst(state),
                        state)

    def test_pc_disagreement_allowed_under_matching_zap(self):
        state = make_state()
        state.regs.set(PC_B, blue(7))
        check_state({}, state.code, entry_context(), mem_subst(state), state,
                    zap=B)

    def test_queue_contents_checked(self):
        from repro.statics import const

        state = make_state(memory={256: 0}, queue=[(256, 5)])
        psi = {256: INT_REF}
        ctx = entry_context(queue=((const(256), const(5)),))
        check_state(psi, state.code, ctx, mem_subst(state), state)
        # Wrong value description:
        bad = entry_context(queue=((const(256), const(6)),))
        with pytest.raises(StateTypeError):
            check_state(psi, state.code, bad, mem_subst(state), state)

    def test_queue_address_outside_memory_rejected(self):
        from repro.statics import const

        state = make_state(queue=[(999, 5)])
        ctx = entry_context(queue=((const(999), const(5)),))
        with pytest.raises(StateTypeError):
            check_state({}, state.code, ctx, mem_subst(state), state)

    def test_queue_arbitrary_under_green_zap(self):
        from repro.statics import const

        state = make_state(queue=[(999, 5)])
        ctx = entry_context(queue=((const(1), const(1)),))
        # Q-zap-t: under a green zap only length and kinds are checked.
        check_state({}, state.code, ctx, mem_subst(state), state, zap=G)

    def test_fault_state_never_typed(self):
        state = make_state()
        state.enter_fault()
        with pytest.raises(StateTypeError):
            check_state({}, {1: Halt()}, entry_context(), Subst({"m": memory_to_expr({})}), state)

    def test_loaded_instruction_must_match_code(self):
        state = make_state(code={1: Halt()})
        state.ir = Mov("r1", green(1))  # but code[1] is Halt
        with pytest.raises(StateTypeError):
            check_state({}, state.code, entry_context(), mem_subst(state),
                        state)


class TestSubstInference:
    def test_infers_register_variables(self):
        ctx = entry_context(overrides={
            "r1": RegType(G, INT, var("a")),
            "r2": RegType(B, INT, var("b")),
        })
        state = make_state()
        state.regs.set("r1", green(42))
        state.regs.set("r2", blue(17))
        subst = infer_closing_subst(ctx, state)
        assert subst.lookup("a") == IntConst(42)
        assert subst.lookup("b") == IntConst(17)

    def test_infers_memory_variable(self):
        state = make_state(memory={5: 9})
        subst = infer_closing_subst(entry_context(), state)
        assert subst.lookup("m") == memory_to_expr({5: 9})

    def test_zap_prefers_trusted_color(self):
        # A shared variable must be bound from the non-zapped copy.
        ctx = entry_context(overrides={
            "r1": RegType(G, INT, var("n")),
            "r2": RegType(B, INT, var("n")),
        })
        state = make_state()
        state.regs.set("r1", green(999))  # corrupted green copy
        state.regs.set("r2", blue(5))
        subst = infer_closing_subst(ctx, state, zap=G)
        assert subst.lookup("n") == IntConst(5)

    def test_unbindable_variable_raises(self):
        from repro.statics import add, const

        ctx = entry_context(overrides={
            # n never appears alone, so matching cannot solve for it.
            "r1": RegType(G, INT, add(var("n"), const(1))),
        })
        with pytest.raises(StateTypeError):
            infer_closing_subst(ctx, make_state())

    def test_inferred_subst_closes_the_state(self):
        ctx = entry_context(overrides={
            "r1": RegType(G, INT, var("a")),
        })
        state = make_state()
        state.regs.set("r1", green(7))
        subst = infer_closing_subst(ctx, state)
        check_state({}, state.code, ctx, subst, state)
