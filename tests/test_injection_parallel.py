"""Tests for the checkpoint/replay campaign engine and its parallel path.

The engine's contract is determinism: (1) a state reconstructed by
replaying from a sparse checkpoint equals the eager per-step snapshot the
seed engine used to keep, and (2) any worker count produces a report
bit-identical to the serial engine's for the same seed.
"""

import pytest

from repro.compiler import compile_source
from repro.core import Machine
from repro.injection import CampaignConfig, run_campaign
from repro.injection.campaign import (
    ReferenceRun,
    _injection_steps,
    _reference_run,
    classify_tail,
)
from tests.helpers import countdown_loop_program, paper_store_program


def _eager_snapshots(program, config):
    """Per-step eager snapshots, the seed engine's O(steps x state) way."""
    state = program.boot()
    machine = Machine(state, oob_policy=config.oob_policy)
    snapshots = []
    while not state.is_terminal:
        snapshots.append(state.clone())
        machine.step()
    return snapshots


def _report_fingerprint(report):
    """Everything the parity contract promises, as comparable data."""
    return (
        report.injections,
        report.counts,
        report.coverage,
        [(r.step, r.fault, r.result, r.outputs, r.latency)
         for r in report.records],
        [(r.step, r.fault, r.result, r.outputs, r.latency)
         for r in report.violations],
    )


class TestCheckpointReplay:
    @pytest.mark.parametrize("interval", [1, 3, 7, 64])
    def test_replayed_states_equal_eager_snapshots(self, interval):
        program = countdown_loop_program(3)
        config = CampaignConfig(checkpoint_interval=interval)
        reference = _reference_run(program, config)
        eager = _eager_snapshots(program, config)
        assert reference.num_steps == len(eager)
        for step_index, expected in enumerate(eager):
            replayed = reference.state_at(step_index)
            assert replayed.regs == expected.regs
            assert replayed.memory == expected.memory
            assert replayed.queue == expected.queue
            assert replayed.ir == expected.ir
            assert replayed.status == expected.status

    def test_checkpoint_count_is_sparse(self):
        program = countdown_loop_program(4)
        config = CampaignConfig(checkpoint_interval=16)
        reference = _reference_run(program, config)
        assert len(reference.checkpoints) <= reference.num_steps // 16 + 1
        assert len(reference.checkpoints) < reference.num_steps

    def test_state_at_returns_fresh_states(self):
        reference = _reference_run(paper_store_program(), CampaignConfig())
        first = reference.state_at(2)
        first.memory[999] = 1  # mutating a reconstruction ...
        again = reference.state_at(2)
        assert 999 not in again.memory  # ... never leaks into the next one

    def test_state_at_rejects_out_of_range(self):
        reference = _reference_run(paper_store_program(), CampaignConfig())
        with pytest.raises(IndexError):
            reference.state_at(reference.num_steps)

    def test_outputs_before_tracks_reference_outputs(self):
        reference = _reference_run(countdown_loop_program(3), CampaignConfig())
        assert reference.outputs_before[0] == 0
        assert reference.outputs_before[-1] <= len(reference.trace.outputs)
        assert reference.outputs_before == sorted(reference.outputs_before)


class TestInjectionStepSampling:
    def _config(self, stride=1, cap=None):
        return CampaignConfig(step_stride=stride, max_injection_steps=cap)

    def test_uncapped_is_every_strided_step(self):
        assert _injection_steps(10, self._config()) == list(range(10))
        assert _injection_steps(10, self._config(stride=3)) == [0, 3, 6, 9]

    def test_cap_is_met_exactly(self):
        # Seed regression: the combined stride step_stride * stride could
        # overshoot and return fewer than max_injection_steps points
        # (e.g. 100 candidates, cap 30 -> stride 3 -> 34... but 100/7 -> 15
        # candidates, cap 4 -> stride 3 -> 5). The fix samples indices.
        for total, stride, cap in [(100, 1, 30), (100, 7, 4), (1000, 1, 33),
                                   (77, 2, 13), (500, 3, 40)]:
            steps = _injection_steps(
                total, self._config(stride=stride, cap=cap))
            assert len(steps) == cap, (total, stride, cap, steps)

    def test_cap_covers_head_and_tail(self):
        steps = _injection_steps(1000, self._config(cap=10))
        assert steps[0] == 0
        assert steps[-1] == 999  # the tail of long runs is not skipped
        steps = _injection_steps(100, self._config(stride=7, cap=4))
        assert steps[0] == 0
        assert steps[-1] == 98  # last stride-aligned candidate

    def test_steps_are_strictly_increasing_and_stride_aligned(self):
        steps = _injection_steps(997, self._config(stride=5, cap=23))
        assert steps == sorted(set(steps))
        assert all(s % 5 == 0 for s in steps)

    def test_degenerate_caps(self):
        assert _injection_steps(50, self._config(cap=1)) == [0]
        assert _injection_steps(0, self._config()) == []
        # cap=0 is rejected at construction now (see
        # TestCampaignConfigValidation); the sampler itself still treats a
        # non-positive cap defensively as "no steps".
        config = self._config()
        config.max_injection_steps = 0
        assert _injection_steps(50, config) == []


class TestSerialParallelParity:
    @pytest.mark.parametrize("make_program", [
        paper_store_program,
        lambda: countdown_loop_program(3),
    ], ids=["store", "countdown"])
    def test_exhaustive_parity(self, make_program):
        program = make_program()
        config = CampaignConfig(seed=7, keep_records=True)
        serial = run_campaign(program, config, jobs=1)
        parallel = run_campaign(program, config, jobs=2)
        assert _report_fingerprint(serial) == _report_fingerprint(parallel)
        assert serial.coverage == 1.0

    def test_sampled_parity_with_all_knobs(self):
        program = compile_source(
            """
            array src[3] = {5, 9, 2};
            array out[3];
            out[0] = src[0] + src[1];
            out[1] = src[1] * src[2];
            out[2] = src[2] - src[0];
            """,
            mode="ft",
        ).program
        config = CampaignConfig(
            seed=20260806,
            step_stride=2,
            max_injection_steps=9,
            max_sites_per_step=5,
            max_values_per_site=3,
            checkpoint_interval=8,
            keep_records=True,
        )
        serial = run_campaign(program, config, jobs=1)
        parallel = run_campaign(program, config, jobs=3)
        assert _report_fingerprint(serial) == _report_fingerprint(parallel)

    def test_config_jobs_field_drives_the_pool(self):
        program = paper_store_program()
        config = CampaignConfig(seed=3, jobs=2, max_injection_steps=6)
        via_config = run_campaign(program, config)
        serial = run_campaign(program, config, jobs=1)
        assert _report_fingerprint(via_config) == _report_fingerprint(serial)

    def test_parallel_smoke_two_workers(self):
        # Tier-1-safe smoke test: a tiny campaign through the real pool
        # path (2 workers) so process startup/merge is exercised by
        # ``pytest -x -q``.
        report = run_campaign(
            paper_store_program(),
            CampaignConfig(seed=1, max_injection_steps=4,
                           max_sites_per_step=4, max_values_per_site=2),
            jobs=2,
        )
        assert report.injections > 0
        assert report.coverage == 1.0


class TestClassifyTail:
    def test_matches_full_classify_on_merged_traces(self):
        from repro.core import Outcome, Trace
        from repro.injection import classify

        reference = Trace(Outcome.HALTED, [(1, 1), (2, 2), (3, 3)], 30)
        cases = [
            (Outcome.HALTED, 1, [(2, 2), (3, 3)]),      # masked
            (Outcome.HALTED, 1, [(9, 9), (3, 3)]),      # silent
            (Outcome.HALTED, 2, []),                    # silent (short)
            (Outcome.FAULT_DETECTED, 2, []),            # detected prefix
            (Outcome.FAULT_DETECTED, 1, [(2, 2)]),      # detected prefix
            (Outcome.FAULT_DETECTED, 1, [(8, 8)]),      # deviated
            (Outcome.FAULT_DETECTED, 0, [(1, 1), (2, 2), (3, 3), (4, 4)]),
            (Outcome.STUCK, 1, []),
            (Outcome.RUNNING, 0, [(1, 1)]),
        ]
        for outcome, produced, tail in cases:
            trace = Trace(outcome, list(tail), 12)
            merged = Trace(
                outcome, list(reference.outputs[:produced]) + list(tail), 12)
            assert classify_tail(trace, reference, produced) == \
                classify(merged, reference), (outcome, produced, tail)

    def test_error_port_convention_matches(self):
        from repro.core import Outcome, Trace
        from repro.injection import classify

        reference = Trace(Outcome.HALTED, [(1, 1), (2, 2)], 20)
        # Announced on port 7 after a clean prefix: software-detected.
        trace = Trace(Outcome.HALTED, [(2, 2), (7, 1)], 15)
        merged = Trace(Outcome.HALTED, [(1, 1), (2, 2), (7, 1)], 15)
        assert classify_tail(trace, reference, 1, error_port=7) == \
            classify(merged, reference, error_port=7)


class TestCampaignConfigValidation:
    """CampaignConfig rejects nonsense knob values at construction.

    Regression: ``step_stride=0`` used to loop ``_injection_steps``
    forever, and sub-1 ``checkpoint_interval``/``jobs``/
    ``max_injection_steps`` failed obscurely deep inside the engine.
    """

    @pytest.mark.parametrize("field,value", [
        ("step_stride", 0),
        ("step_stride", -1),
        ("checkpoint_interval", 0),
        ("jobs", 0),
        ("jobs", -2),
        ("max_steps", 0),
        ("max_injection_steps", 0),
        ("max_values_per_site", 0),
        ("max_sites_per_step", 0),
        ("step_slack", -1),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ValueError, match=field):
            CampaignConfig(**{field: value})

    def test_error_message_is_friendly(self):
        with pytest.raises(ValueError,
                           match=r"step_stride must be at least 1 \(got 0\)"):
            CampaignConfig(step_stride=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            CampaignConfig(backend="jit")

    def test_accepts_boundary_values(self):
        config = CampaignConfig(step_stride=1, checkpoint_interval=1,
                                jobs=1, step_slack=0,
                                max_injection_steps=1,
                                max_values_per_site=1,
                                max_sites_per_step=1)
        assert config.step_slack == 0

    def test_none_caps_still_allowed(self):
        config = CampaignConfig(max_injection_steps=None,
                                max_values_per_site=None,
                                max_sites_per_step=None)
        assert config.max_injection_steps is None

    def test_dataclass_replace_revalidates(self):
        from dataclasses import replace

        config = CampaignConfig()
        with pytest.raises(ValueError, match="jobs"):
            replace(config, jobs=0)
