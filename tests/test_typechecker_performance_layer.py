"""The high-throughput checker machinery: hash-consing, memo caches,
substitution hashing, and serial/parallel equivalence.

These tests pin the invariants the fast paths rely on:

* interning -- structural equality implies pointer identity, hashes are
  stable, free-variable sets are precomputed, pickling re-interns;
* the LRU caches are bounded and survive ``clear_normalization_caches``;
* ``Subst`` hashes consistently with its equality;
* ``check_program`` produces identical results and diagnostics whether
  the blocks are checked serially or across a process pool.
"""

import pickle

import pytest

from repro.core.caching import LRUCache
from repro.statics import (
    BinExpr,
    EmptyMem,
    IntConst,
    Sel,
    StaticsError,
    Subst,
    Upd,
    Var,
    clear_normalization_caches,
    free_vars,
    intern_table_sizes,
    normalization_cache_stats,
    normalize_int,
)
from repro.workloads import ALL_KERNELS, compile_kernel


# ---------------------------------------------------------------------------
# Hash-consing invariants
# ---------------------------------------------------------------------------


class TestInterning:
    def test_structural_equality_is_identity(self):
        assert Var("x") is Var("x")
        assert IntConst(41) is IntConst(41)
        assert BinExpr("add", Var("x"), IntConst(1)) \
            is BinExpr("add", Var("x"), IntConst(1))
        assert Sel(Var("m"), Var("x")) is Sel(Var("m"), Var("x"))
        assert Upd(Var("m"), Var("x"), IntConst(0)) \
            is Upd(Var("m"), Var("x"), IntConst(0))
        assert EmptyMem() is EmptyMem()

    def test_distinct_structures_are_distinct(self):
        assert Var("x") is not Var("y")
        assert IntConst(1) is not IntConst(2)
        assert BinExpr("add", Var("x"), IntConst(1)) \
            is not BinExpr("sub", Var("x"), IntConst(1))

    def test_bool_literal_does_not_alias_int(self):
        # hash(True) == hash(1): validation must run before interning.
        IntConst(1)
        with pytest.raises(StaticsError):
            IntConst(True)

    def test_hash_stability(self):
        expr = BinExpr("mul", Var("x"), BinExpr("add", Var("y"), IntConst(2)))
        first = hash(expr)
        assert hash(expr) == first
        assert hash(BinExpr("mul", Var("x"),
                            BinExpr("add", Var("y"), IntConst(2)))) == first

    def test_free_variable_sets(self):
        assert free_vars(IntConst(3)) == frozenset()
        assert free_vars(Var("x")) == frozenset({"x"})
        assert free_vars(BinExpr("add", Var("x"), Var("y"))) \
            == frozenset({"x", "y"})
        assert free_vars(Upd(Var("m"), Var("a"), IntConst(0))) \
            == frozenset({"m", "a"})
        assert free_vars(EmptyMem()) == frozenset()

    def test_immutability(self):
        expr = BinExpr("add", Var("x"), IntConst(1))
        with pytest.raises(AttributeError):
            expr.op = "sub"

    def test_pickle_reinterns(self):
        expr = Sel(Upd(Var("m"), Var("a"), IntConst(7)), Var("a"))
        clone = pickle.loads(pickle.dumps(expr))
        assert clone is expr

    def test_intern_table_sizes_observable(self):
        Var("observability_probe")
        sizes = intern_table_sizes()
        assert sizes["Var"] >= 1
        assert set(sizes) == {"Var", "IntConst", "BinExpr", "Sel", "Upd"}


# ---------------------------------------------------------------------------
# Bounded LRU caches
# ---------------------------------------------------------------------------


class TestLRUCache:
    def test_bounded_with_lru_eviction(self):
        cache = LRUCache(4)
        for key in range(4):
            cache.put(key, str(key))
        # Touch 0 so 1 becomes the eviction victim.
        assert cache.get(0) == "0"
        cache.put(99, "99")
        assert len(cache) == 4
        assert 1 not in cache
        assert 0 in cache and 99 in cache

    def test_none_is_miss_sentinel(self):
        cache = LRUCache(2)
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_normalization_caches_bounded_and_clearable(self):
        clear_normalization_caches()
        normalize_int(BinExpr("add", BinExpr("mul", Var("p"), Var("q")),
                              IntConst(5)))
        stats = normalization_cache_stats()
        assert any(entries for entries, _, _ in stats.values())
        clear_normalization_caches()
        stats = normalization_cache_stats()
        assert all(entries == 0 for entries, _, _ in stats.values())


# ---------------------------------------------------------------------------
# Substitution hashing (consistent with __eq__)
# ---------------------------------------------------------------------------


class TestSubstHash:
    def test_equal_substitutions_hash_equal(self):
        left = Subst({"x": IntConst(1), "y": Var("z")})
        right = Subst({"y": Var("z"), "x": IntConst(1)})
        assert left == right
        assert hash(left) == hash(right)

    def test_usable_in_sets(self):
        a = Subst({"x": IntConst(1)})
        b = Subst({"x": IntConst(1)})
        c = Subst({"x": IntConst(2)})
        assert len({a, b, c}) == 2

    def test_hash_stable_across_calls(self):
        subst = Subst({"x": BinExpr("add", Var("y"), IntConst(3))})
        assert hash(subst) == hash(subst)


# ---------------------------------------------------------------------------
# Serial vs parallel block checking
# ---------------------------------------------------------------------------


PARITY_KERNELS = ("gzip", "gcc", "pegwit")


class TestParallelParity:
    @pytest.mark.parametrize("kernel", PARITY_KERNELS)
    def test_identical_checked_program(self, kernel):
        program = compile_kernel(kernel, "ft").program
        serial = program.check()
        parallel = program.check(jobs=2)
        assert serial.psi == parallel.psi
        assert serial.labels == parallel.labels
        assert list(serial.contexts) == list(parallel.contexts)
        assert serial.contexts == parallel.contexts

    def test_every_kernel_checks_in_parallel(self):
        # Cheap smoke over the whole suite: the pool path accepts every
        # well-typed kernel (full equality is covered above).
        for kernel in ALL_KERNELS:
            program = compile_kernel(kernel, "ft").program
            checked = program.check(jobs=2)
            assert len(checked.contexts) == program.size

    def test_jobs_zero_means_auto(self):
        program = compile_kernel("gzip", "ft").program
        checked = program.check(jobs=0)
        assert len(checked.contexts) == program.size
