"""Tests for crash-safe campaigns: journaling, supervision, chaos.

The contract under test is *infrastructure* fault tolerance: whatever the
journal or the worker pool suffers -- truncated files, flipped bits, a
SIGKILLed worker, a stalled chunk -- the final ``CampaignReport`` must be
bit-identical to an uninterrupted serial run (or the journal must be
rejected outright when it belongs to a different campaign).
"""

import os
import warnings

import pytest

from repro.injection import (
    CampaignConfig,
    ChaosSpec,
    JournalMismatch,
    ResilienceConfig,
    config_digest,
    load_journal,
    program_digest,
    run_campaign,
)
from repro.injection.campaign import _injection_steps, _reference_run
from repro.injection.chaos import (
    corrupt_journal_line,
    report_fingerprint,
    run_scenarios,
    truncate_journal_tail,
)
from repro.injection.journal import (
    CampaignJournal,
    _outcome_from_json,
    _outcome_to_json,
    resume_journal,
)
from tests.helpers import countdown_loop_program, paper_store_program


def _config(**overrides):
    base = dict(seed=99, keep_records=True, max_sites_per_step=5,
                max_values_per_site=2)
    base.update(overrides)
    return CampaignConfig(**base)


class TestJournalRoundTrip:
    def test_outcome_codec_is_lossless(self):
        program = paper_store_program()
        config = _config()
        reference = _reference_run(program, config)
        from repro.injection.campaign import _run_step

        budget = reference.trace.steps + config.step_slack
        outcomes = _run_step(program, config, reference, budget, 1)
        assert outcomes  # the codec test needs real material
        decoded = [_outcome_from_json(_outcome_to_json(o)) for o in outcomes]
        assert decoded == outcomes
        # With a reference tail, MASKED tails collapse to the "=" sentinel
        # and re-expand to the identical tuples.
        ref_tail = tuple(
            reference.trace.outputs[reference.outputs_before[1]:])
        framed = [_outcome_to_json(o, ref_tail) for o in outcomes]
        assert any(entry[2] == "=" for entry in framed)
        assert [_outcome_from_json(entry, ref_tail)
                for entry in framed] == outcomes
        # Decoding a sentinel without the tail is a programming error.
        sentinel = next(entry for entry in framed if entry[2] == "=")
        with pytest.raises(ValueError):
            _outcome_from_json(sentinel)

    def test_journal_holds_every_step(self, tmp_path):
        program = paper_store_program()
        config = _config()
        path = str(tmp_path / "c.journal")
        report = run_campaign(program, config, journal_path=path)
        load = load_journal(path, program_digest(program),
                            config_digest(config))
        reference = _reference_run(program, config)
        expected_steps = _injection_steps(reference.num_steps, config)
        assert sorted(load.steps) == expected_steps
        assert load.corrupt_lines == 0
        assert report.resilience.journaled_steps == len(expected_steps)

    def test_resume_with_zero_remaining_steps(self, tmp_path):
        program = paper_store_program()
        config = _config()
        path = str(tmp_path / "c.journal")
        first = run_campaign(program, config, journal_path=path)
        resumed = run_campaign(program, config, journal_path=path,
                               resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(first)
        assert resumed.resilience.resumed_steps == \
            first.resilience.journaled_steps
        assert resumed.resilience.journaled_steps == 0

    def test_empty_campaign_journal(self, tmp_path):
        # A stride past the run length leaves a single injection step; a
        # journal written for it must load and resume cleanly, and the
        # degenerate empty-journal file (header only) must too.
        program = paper_store_program()
        config = _config(step_stride=10_000)
        path = str(tmp_path / "tiny.journal")
        report = run_campaign(program, config, journal_path=path)
        resumed = run_campaign(program, config, journal_path=path,
                               resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(report)
        # Header-only journal: fresh writer, no steps appended.
        empty = str(tmp_path / "empty.journal")
        CampaignJournal.fresh(empty, program_digest(program),
                              config_digest(config)).close()
        load = load_journal(empty, program_digest(program),
                            config_digest(config))
        assert load.has_header and load.steps == {}

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        program = paper_store_program()
        config = _config()
        path = str(tmp_path / "never-written.journal")
        report = run_campaign(program, config, journal_path=path,
                              resume=True)
        assert report.resilience.resumed_steps == 0
        assert report.resilience.journaled_steps > 0
        assert os.path.exists(path)

    def test_config_hash_mismatch_rejected(self, tmp_path):
        program = paper_store_program()
        path = str(tmp_path / "c.journal")
        run_campaign(program, _config(seed=99), journal_path=path)
        with pytest.raises(JournalMismatch):
            run_campaign(program, _config(seed=100), journal_path=path,
                         resume=True)

    def test_program_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "c.journal")
        run_campaign(paper_store_program(), _config(), journal_path=path)
        with pytest.raises(JournalMismatch):
            run_campaign(countdown_loop_program(2), _config(),
                         journal_path=path, resume=True)

    def test_partition_invariant_digest_fields_resume(self, tmp_path):
        # jobs/backend/checkpoint_interval cannot change outcomes, so a
        # journal written under one combination resumes under another.
        program = paper_store_program()
        path = str(tmp_path / "c.journal")
        first = run_campaign(program, _config(checkpoint_interval=8),
                             journal_path=path, backend="step")
        resumed = run_campaign(program, _config(checkpoint_interval=64),
                               journal_path=path, resume=True,
                               backend="compiled")
        assert report_fingerprint(resumed) == report_fingerprint(first)
        assert resumed.resilience.resumed_steps > 0

    def test_corrupt_checksum_line_skipped_with_warning(self, tmp_path):
        program = paper_store_program()
        config = _config()
        path = str(tmp_path / "c.journal")
        reference = run_campaign(program, config, journal_path=path)
        corrupt_journal_line(path, line_index=-1)
        with pytest.warns(UserWarning, match="corrupt"):
            resumed = run_campaign(program, config, journal_path=path,
                                   resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(reference)
        assert resumed.resilience.corrupt_journal_lines == 1
        assert resumed.resilience.journaled_steps == 1  # recomputed

    def test_truncated_tail_with_torn_line_resumes(self, tmp_path):
        program = paper_store_program()
        config = _config()
        path = str(tmp_path / "c.journal")
        reference = run_campaign(program, config, journal_path=path)
        removed = truncate_journal_tail(path, lines=2, torn_bytes=30)
        assert removed == 2
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed = run_campaign(program, config, journal_path=path,
                                   resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(reference)
        assert resumed.resilience.journaled_steps >= 2

    def test_resume_rewrite_compacts_torn_tail(self, tmp_path):
        # resume_journal must rewrite the file so a torn half-line cannot
        # concatenate with the next append.
        program = paper_store_program()
        config = _config()
        path = str(tmp_path / "c.journal")
        run_campaign(program, config, journal_path=path)
        truncate_journal_tail(path, lines=1, torn_bytes=10)
        digests = (program_digest(program), config_digest(config))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # torn-tail skip is expected
            journal, load = resume_journal(path, *digests)
        journal.close()
        with open(path) as handle:
            assert handle.read().endswith("\n")
        reload = load_journal(path, *digests)
        assert reload.corrupt_lines == 0
        assert sorted(reload.steps) == sorted(load.steps)


class TestSupervisedPool:
    def test_supervised_parity_with_serial(self):
        program = countdown_loop_program(3)
        config = _config(max_injection_steps=8)
        serial = run_campaign(program, config, jobs=1)
        supervised = run_campaign(program, config, jobs=2,
                                  resilience=ResilienceConfig())
        assert report_fingerprint(supervised) == report_fingerprint(serial)
        assert supervised.resilience is not None
        assert supervised.resilience.retries == 0

    def test_killed_worker_is_retried_with_parity(self, tmp_path):
        program = paper_store_program()
        config = _config(max_injection_steps=6)
        serial = run_campaign(program, config, jobs=1)
        chaotic = run_campaign(
            program, config, jobs=2,
            resilience=ResilienceConfig(max_retries=3, backoff_base=0.01),
            chaos=ChaosSpec(kill_chunk=1, marker_dir=str(tmp_path)),
        )
        assert report_fingerprint(chaotic) == report_fingerprint(serial)
        stats = chaotic.resilience
        assert stats.worker_crashes >= 1
        assert stats.pool_rebuilds >= 1

    def test_hung_chunk_times_out_and_retries(self, tmp_path):
        program = paper_store_program()
        config = _config(max_injection_steps=6)
        serial = run_campaign(program, config, jobs=1)
        chaotic = run_campaign(
            program, config, jobs=2,
            resilience=ResilienceConfig(chunk_timeout=0.5, max_retries=3,
                                        backoff_base=0.01),
            chaos=ChaosSpec(delay_chunk=1, delay_seconds=3.0,
                            marker_dir=str(tmp_path)),
        )
        assert report_fingerprint(chaotic) == report_fingerprint(serial)
        assert chaotic.resilience.timeouts >= 1

    def test_exhausted_retries_fall_back_to_serial(self, tmp_path):
        # max_retries=0: the first kill exhausts the budget, so the chunk
        # must degrade to in-process execution -- and still match.
        program = paper_store_program()
        config = _config(max_injection_steps=6)
        serial = run_campaign(program, config, jobs=1)
        chaotic = run_campaign(
            program, config, jobs=2,
            resilience=ResilienceConfig(max_retries=0, backoff_base=0.01),
            chaos=ChaosSpec(kill_chunk=1, marker_dir=str(tmp_path)),
        )
        assert report_fingerprint(chaotic) == report_fingerprint(serial)
        assert chaotic.resilience.fallback_chunks >= 1

    def test_journal_plus_pool_resume(self, tmp_path):
        # Journaled parallel run, truncated, resumed in parallel: the
        # composition of every resilience layer still reproduces the
        # serial report.
        program = countdown_loop_program(3)
        config = _config(max_injection_steps=10)
        serial = run_campaign(program, config, jobs=1)
        path = str(tmp_path / "c.journal")
        run_campaign(program, config, jobs=2, journal_path=path)
        truncate_journal_tail(path, lines=3)
        resumed = run_campaign(program, config, jobs=2, journal_path=path,
                               resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(serial)
        assert resumed.resilience.resumed_steps > 0


class TestChaosHarness:
    def test_journal_scenarios_on_kernel(self):
        # The full worker-kill scenarios run in the CLI/CI chaos smoke;
        # here the journal-tamper scenarios (serial, fast) pin the
        # harness end to end on a real compiled kernel.
        from repro.workloads import compile_kernel

        program = compile_kernel("adpcm", "ft").program
        results = run_scenarios(
            program, ["truncate-journal", "corrupt-journal", "recovery"],
            config=_config(max_injection_steps=6),
        )
        for result in results:
            assert result.passed, (result.scenario, result.detail)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            run_scenarios(paper_store_program(), ["space-weather"])
