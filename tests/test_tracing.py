"""Tests for the execution tracer and the `talft trace` command."""

import os

from repro.cli import main
from repro.core.tracing import format_trace, trace_execution
from tests.helpers import countdown_loop_program, paper_store_program

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples",
                        "programs")


class TestTraceExecution:
    def test_trace_records_every_step(self):
        program = paper_store_program()
        events = trace_execution(program.boot(), max_steps=100)
        assert len(events) == 14  # 7 instructions, fetch+execute each
        assert events[0].rule == "fetch"
        assert events[1].rule == "mov"
        assert events[-1].rule == "halt"

    def test_register_changes_recorded(self):
        program = paper_store_program()
        events = trace_execution(program.boot(), max_steps=4)
        mov_event = events[1]
        assert "r1" in mov_event.changes
        before, after = mov_event.changes["r1"]
        assert before.value == 0 and after.value == 5

    def test_queue_and_outputs_recorded(self):
        program = paper_store_program()
        events = trace_execution(program.boot(), max_steps=100)
        st_green = next(e for e in events if e.rule == "stG-queue")
        assert st_green.queue == ((256, 5),)
        st_blue = next(e for e in events if e.rule == "stB-mem")
        assert st_blue.outputs == ((256, 5),)
        assert st_blue.queue == ()

    def test_trace_stops_at_terminal(self):
        program = paper_store_program()
        events = trace_execution(program.boot(), max_steps=10_000)
        assert events[-1].rule == "halt"

    def test_format_is_readable(self):
        program = countdown_loop_program(1)
        text = format_trace(trace_execution(program.boot(), max_steps=60))
        assert "stG-queue" in text
        assert "OUTPUT M[256] <- 1" in text
        assert "bzB-taken" in text

    def test_addresses_follow_control_flow(self):
        program = countdown_loop_program(1)
        events = trace_execution(program.boot(), max_steps=60)
        addresses = [e.address for e in events if e.rule == "fetch"]
        assert addresses[0] == program.entry
        assert program.address_of("done") in addresses


class TestTraceCommand:
    STORE = os.path.join(EXAMPLES, "store.tal")

    def test_trace_fault_free(self, capsys):
        assert main(["trace", self.STORE, "--steps", "30"]) == 0
        out = capsys.readouterr().out
        assert "stB-mem" in out
        assert "status: halted" in out

    def test_trace_with_fault(self, capsys):
        assert main(["trace", self.STORE, "--steps", "30",
                     "--fault", "r1=666@2"]) == 0
        out = capsys.readouterr().out
        assert "FAULT INJECTED" in out
        assert "stB-mem-fail" in out
        assert "status: fault" in out
