"""Tests for the execution tracer and the `talft trace` command."""

import os
from dataclasses import dataclass

import pytest

from repro.cli import main
from repro.core import semantics
from repro.core.colors import green
from repro.core.instructions import Halt, Instruction, Mov
from repro.core.semantics import StepResult
from repro.core.tracing import format_trace, trace_execution
from repro.exec import trace_events_compiled
from tests.helpers import (
    boot_state,
    countdown_loop_program,
    paper_store_program,
)

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples",
                        "programs")


class TestTraceExecution:
    def test_trace_records_every_step(self):
        program = paper_store_program()
        events = trace_execution(program.boot(), max_steps=100)
        assert len(events) == 14  # 7 instructions, fetch+execute each
        assert events[0].rule == "fetch"
        assert events[1].rule == "mov"
        assert events[-1].rule == "halt"

    def test_register_changes_recorded(self):
        program = paper_store_program()
        events = trace_execution(program.boot(), max_steps=4)
        mov_event = events[1]
        assert "r1" in mov_event.changes
        before, after = mov_event.changes["r1"]
        assert before.value == 0 and after.value == 5

    def test_queue_and_outputs_recorded(self):
        program = paper_store_program()
        events = trace_execution(program.boot(), max_steps=100)
        st_green = next(e for e in events if e.rule == "stG-queue")
        assert st_green.queue == ((256, 5),)
        st_blue = next(e for e in events if e.rule == "stB-mem")
        assert st_blue.outputs == ((256, 5),)
        assert st_blue.queue == ()

    def test_trace_stops_at_terminal(self):
        program = paper_store_program()
        events = trace_execution(program.boot(), max_steps=10_000)
        assert events[-1].rule == "halt"

    def test_format_is_readable(self):
        program = countdown_loop_program(1)
        text = format_trace(trace_execution(program.boot(), max_steps=60))
        assert "stG-queue" in text
        assert "OUTPUT M[256] <- 1" in text
        assert "bzB-taken" in text

    def test_addresses_follow_control_flow(self):
        program = countdown_loop_program(1)
        events = trace_execution(program.boot(), max_steps=60)
        addresses = [e.address for e in events if e.rule == "fetch"]
        assert addresses[0] == program.entry
        assert program.address_of("done") in addresses


@dataclass(frozen=True)
class WriteAndHalt(Instruction):
    """Test-only instruction: write a register, then halt -- in one step.

    No built-in rule both writes a general-purpose register and
    terminates in the same small step, so this is the only way to
    exercise the tracer's terminal-step register diff.
    """

    rd: str
    value: int


def _write_and_halt(state, instr, oob_policy, rand_source):
    state.regs.set(instr.rd, green(instr.value))
    state.halt()
    return StepResult((), "write-and-halt")


@pytest.fixture
def write_and_halt_rule():
    semantics._DISPATCH[WriteAndHalt] = _write_and_halt
    try:
        yield
    finally:
        semantics._DISPATCH.pop(WriteAndHalt, None)


class TestTerminalStepChanges:
    """The final step's register writes must appear in the trace.

    Regression: both tracers used to guard the register diff with
    ``not state.is_terminal``, silently dropping any write made by a
    rule that also terminated the machine.
    """

    CODE = {1: Mov("r2", green(7)), 2: WriteAndHalt("r1", 99)}

    def test_interpreter_keeps_terminal_write(self, write_and_halt_rule):
        events = trace_execution(boot_state(self.CODE), max_steps=100)
        last = events[-1]
        assert last.rule == "write-and-halt"
        assert "r1" in last.changes
        before, after = last.changes["r1"]
        assert before.value == 0 and after.value == 99

    def test_compiled_twin_keeps_terminal_write(self, write_and_halt_rule):
        # The compiler rejects the unknown instruction, so the compiled
        # tracer takes its interpreter fallback path -- the second site
        # of the same dropped-diff bug.
        events = trace_events_compiled(boot_state(self.CODE), max_steps=100)
        last = events[-1]
        assert last.rule == "write-and-halt"
        assert "r1" in last.changes
        assert last.changes["r1"][1].value == 99

    def test_backends_agree_on_terminal_step(self, write_and_halt_rule):
        interp = trace_execution(boot_state(self.CODE), max_steps=100)
        compiled = trace_events_compiled(boot_state(self.CODE),
                                         max_steps=100)
        assert interp == compiled

    def test_halt_still_shows_no_changes(self):
        # A plain halt writes nothing; removing the guard must not
        # invent changes on ordinary terminal steps.
        code = {1: Mov("r1", green(5)), 2: Halt()}
        events = trace_execution(boot_state(code), max_steps=100)
        assert events[-1].rule == "halt"
        assert events[-1].changes == {}

    def test_full_trace_parity_across_backends(self):
        for program in (paper_store_program(), countdown_loop_program(2)):
            interp = trace_execution(program.boot(), max_steps=10_000)
            compiled = trace_events_compiled(program.boot(),
                                             max_steps=10_000)
            assert interp == compiled


class TestTraceCommand:
    STORE = os.path.join(EXAMPLES, "store.tal")

    def test_trace_fault_free(self, capsys):
        assert main(["trace", self.STORE, "--steps", "30"]) == 0
        out = capsys.readouterr().out
        assert "stB-mem" in out
        assert "status: halted" in out

    def test_trace_with_fault(self, capsys):
        assert main(["trace", self.STORE, "--steps", "30",
                     "--fault", "r1=666@2"]) == 0
        out = capsys.readouterr().out
        assert "FAULT INJECTED" in out
        assert "stB-mem-fail" in out
        assert "status: fault" in out
