"""Tests for the similarity relations (Figure 9)."""

from repro.core import Color, Halt, MachineState, RegisterFile, StoreQueue, blue, green
from repro.verify import sim_queues, sim_registers, sim_states, sim_value, similar_under_some_color

G, B = Color.GREEN, Color.BLUE


def make_state(queue=(), regs=None):
    bank = RegisterFile.initial(1, num_gprs=2)
    for name, value in (regs or {}).items():
        bank.set(name, value)
    return MachineState(bank, {1: Halt()}, {5: 9}, StoreQueue(queue))


class TestSimValue:
    def test_empty_zap_requires_identity(self):
        assert sim_value(green(3), green(3), None)
        assert not sim_value(green(3), green(4), None)

    def test_zap_color_allows_any_payload(self):
        assert sim_value(green(3), green(999), G)
        assert not sim_value(green(3), green(999), B)

    def test_colors_must_agree_regardless(self):
        assert not sim_value(green(3), blue(3), G)
        assert not sim_value(green(3), blue(3), None)


class TestSimRegisters:
    def test_identical_banks(self):
        assert sim_registers(make_state().regs, make_state().regs, None)

    def test_zapped_color_divergence_allowed(self):
        a = make_state(regs={"r1": green(1)}).regs
        b = make_state(regs={"r1": green(42)}).regs
        assert not sim_registers(a, b, None)
        assert sim_registers(a, b, G)
        assert not sim_registers(a, b, B)

    def test_blue_divergence_under_blue_zap(self):
        a = make_state(regs={"r2": blue(1)}).regs
        b = make_state(regs={"r2": blue(2)}).regs
        assert sim_registers(a, b, B)
        assert not sim_registers(a, b, G)


class TestSimQueues:
    def test_queues_are_green_structures(self):
        a = StoreQueue([(1, 2)])
        b = StoreQueue([(9, 9)])
        assert sim_queues(a, b, G)
        assert not sim_queues(a, b, B)
        assert not sim_queues(a, b, None)

    def test_lengths_must_match_even_under_green_zap(self):
        assert not sim_queues(StoreQueue([(1, 2)]), StoreQueue(), G)


class TestSimStates:
    def test_identical_states(self):
        assert sim_states(make_state(), make_state(), None)

    def test_memory_must_be_identical(self):
        a = make_state()
        b = make_state()
        b.memory[5] = 100
        assert not sim_states(a, b, G)

    def test_register_divergence_at_zap_color(self):
        a = make_state(regs={"r1": green(1)})
        b = make_state(regs={"r1": green(2)})
        assert sim_states(a, b, G)
        assert similar_under_some_color(a, b)

    def test_status_must_match(self):
        a = make_state()
        b = make_state()
        b.enter_fault()
        assert not sim_states(a, b, G)
