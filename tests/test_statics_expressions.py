"""Tests for static expressions: syntax, kinds, denotation, substitution."""

import pytest

from repro.statics import (
    BinExpr,
    EMPTY_CONTEXT,
    EmptyMem,
    IntConst,
    KIND_INT,
    KIND_MEM,
    KindContext,
    Sel,
    StaticsError,
    Subst,
    Upd,
    Var,
    add,
    check_kind,
    check_substitution,
    const,
    denote,
    free_vars,
    infer_kind,
    is_closed,
    memory_to_expr,
    mul,
    sub,
    substitution_ok,
    var,
    well_kinded,
)


class TestSyntax:
    def test_binexpr_rejects_unknown_op(self):
        with pytest.raises(StaticsError):
            BinExpr("div", const(1), const(2))

    def test_free_vars(self):
        expr = Sel(Upd(Var("m"), var("a"), const(1)), add(var("a"), var("b")))
        assert free_vars(expr) == {"m", "a", "b"}

    def test_is_closed(self):
        assert is_closed(add(const(1), const(2)))
        assert not is_closed(var("x"))

    def test_str_forms(self):
        assert str(add(var("x"), const(1))) == "(x add 1)"
        assert str(EmptyMem()) == "emp"
        assert str(Sel(Var("m"), const(3))) == "sel(m, 3)"
        assert str(Upd(Var("m"), const(3), const(4))) == "upd(m, 3, 4)"

    def test_expressions_are_hashable(self):
        seen = {add(var("x"), const(1)), add(var("x"), const(1))}
        assert len(seen) == 1


class TestKinds:
    def test_constants_are_int(self):
        assert infer_kind(const(3)) is KIND_INT

    def test_emp_is_mem(self):
        assert infer_kind(EmptyMem()) is KIND_MEM

    def test_variable_kind_from_context(self):
        ctx = KindContext({"m": KIND_MEM, "x": KIND_INT})
        assert infer_kind(Var("m"), ctx) is KIND_MEM
        assert infer_kind(Var("x"), ctx) is KIND_INT

    def test_unbound_variable_raises(self):
        with pytest.raises(StaticsError):
            infer_kind(var("x"))

    def test_sel_kinds(self):
        ctx = KindContext({"m": KIND_MEM})
        assert infer_kind(Sel(Var("m"), const(1)), ctx) is KIND_INT

    def test_ill_kinded_sel(self):
        ctx = KindContext({"x": KIND_INT})
        assert not well_kinded(Sel(Var("x"), const(1)), ctx)

    def test_ill_kinded_arith_on_memory(self):
        ctx = KindContext({"m": KIND_MEM})
        assert not well_kinded(add(Var("m"), const(1)), ctx)

    def test_upd_kinds(self):
        ctx = KindContext({"m": KIND_MEM})
        assert infer_kind(Upd(Var("m"), const(1), const(2)), ctx) is KIND_MEM

    def test_check_kind_mismatch_raises(self):
        with pytest.raises(StaticsError):
            check_kind(const(1), KIND_MEM)

    def test_context_merge_conflict(self):
        a = KindContext({"x": KIND_INT})
        b = KindContext({"x": KIND_MEM})
        with pytest.raises(StaticsError):
            a.merge(b)

    def test_context_merge_and_extend(self):
        merged = KindContext({"x": KIND_INT}).merge(KindContext({"m": KIND_MEM}))
        assert "x" in merged and "m" in merged
        extended = merged.extend("y", KIND_INT)
        assert extended.lookup("y") is KIND_INT
        assert "y" not in merged  # immutability


class TestDenotation:
    def test_arithmetic(self):
        expr = mul(add(const(2), const(3)), const(4))
        assert denote(expr) == 20

    def test_variables(self):
        assert denote(add(var("x"), const(1)), {"x": 41}) == 42

    def test_memory_select_update(self):
        expr = Sel(Upd(EmptyMem(), const(5), const(7)), const(5))
        assert denote(expr) == 7

    def test_update_shadows(self):
        mem = Upd(Upd(EmptyMem(), const(5), const(1)), const(5), const(2))
        assert denote(Sel(mem, const(5))) == 2

    def test_select_outside_domain_raises(self):
        with pytest.raises(StaticsError):
            denote(Sel(EmptyMem(), const(5)))

    def test_memory_variable(self):
        assert denote(Sel(Var("m"), const(1)), {"m": {1: 10}}) == 10

    def test_unbound_variable_raises(self):
        with pytest.raises(StaticsError):
            denote(var("x"))

    def test_memory_to_expr_roundtrip(self):
        memory = {3: 30, 1: 10, 2: 20}
        assert denote(memory_to_expr(memory)) == memory


class TestSubstitution:
    def test_apply_replaces_free_variables(self):
        s = Subst({"x": const(5)})
        assert s.apply(add(var("x"), var("y"))) == add(const(5), var("y"))

    def test_apply_traverses_memory_operators(self):
        s = Subst({"m": EmptyMem(), "a": const(1)})
        expr = Sel(Upd(Var("m"), Var("a"), const(9)), Var("a"))
        assert s.apply(expr) == Sel(Upd(EmptyMem(), const(1), const(9)), const(1))

    def test_check_substitution_accepts_well_kinded(self):
        inner = KindContext({"x": KIND_INT, "m": KIND_MEM})
        s = Subst({"x": const(1), "m": EmptyMem()})
        check_substitution(s, EMPTY_CONTEXT, inner)  # no exception

    def test_check_substitution_rejects_kind_mismatch(self):
        inner = KindContext({"x": KIND_INT})
        s = Subst({"x": EmptyMem()})
        assert not substitution_ok(s, EMPTY_CONTEXT, inner)

    def test_check_substitution_rejects_missing_binding(self):
        inner = KindContext({"x": KIND_INT})
        assert not substitution_ok(Subst(), EMPTY_CONTEXT, inner)

    def test_substitution_images_may_use_outer_variables(self):
        outer = KindContext({"y": KIND_INT})
        inner = KindContext({"x": KIND_INT})
        s = Subst({"x": add(var("y"), const(1))})
        assert substitution_ok(s, outer, inner)

    def test_extend_is_persistent(self):
        s = Subst()
        s2 = s.extend("x", const(1))
        assert not s.covers("x")
        assert s2.lookup("x") == const(1)
