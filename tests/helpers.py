"""Shared builders for type-system and metatheory tests."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core import Color, MachineState, RegisterFile, StoreQueue
from repro.core.registers import DEST, PC_B, PC_G, gpr_range
from repro.statics import KIND_INT, KIND_MEM, IntConst, KindContext, Var
from repro.types import (
    INT,
    CodeType,
    RegAssign,
    RegFileType,
    RegType,
    StaticContext,
)

#: Default number of general-purpose registers used by the tests.
NUM_GPRS = 8


def zero_gamma(
    entry: int = 1,
    num_gprs: int = NUM_GPRS,
    overrides: Optional[Mapping[str, RegAssign]] = None,
) -> RegFileType:
    """A register-file type with every register at (c, int, 0)."""
    assigns: Dict[str, RegAssign] = {
        PC_G: RegType(Color.GREEN, INT, IntConst(entry)),
        PC_B: RegType(Color.BLUE, INT, IntConst(entry)),
        DEST: RegType(Color.GREEN, INT, IntConst(0)),
    }
    for name in gpr_range(num_gprs):
        assigns[name] = RegType(Color.GREEN, INT, IntConst(0))
    if overrides:
        assigns.update(overrides)
    return RegFileType(assigns)


def entry_context(
    entry: int = 1,
    num_gprs: int = NUM_GPRS,
    overrides: Optional[Mapping[str, RegAssign]] = None,
    queue: Tuple = (),
    mem_var: str = "m",
) -> StaticContext:
    """A solved-form block-entry context over a single memory variable.

    Any expression variables appearing free in ``overrides`` or ``queue``
    are automatically bound at kind int in the context's Delta.
    """
    from repro.statics import free_vars
    from repro.types.syntax import reg_assign_free_vars

    bindings = {mem_var: KIND_MEM}
    for assign in (overrides or {}).values():
        for name in reg_assign_free_vars(assign):
            bindings.setdefault(name, KIND_INT)
    for ed, es in queue:
        for name in free_vars(ed) | free_vars(es):
            bindings.setdefault(name, KIND_INT)
    return StaticContext(
        delta=KindContext(bindings),
        gamma=zero_gamma(entry, num_gprs, overrides),
        queue=queue,
        mem=Var(mem_var),
    )


def entry_code_type(
    entry: int = 1,
    num_gprs: int = NUM_GPRS,
    overrides: Optional[Mapping[str, RegAssign]] = None,
    mem_var: str = "m",
) -> CodeType:
    return CodeType(entry_context(entry, num_gprs, overrides, mem_var=mem_var))


def boot_state(
    code: Mapping[int, object],
    memory: Optional[Dict[int, int]] = None,
    entry: int = 1,
    num_gprs: int = NUM_GPRS,
) -> MachineState:
    """A machine state matching :func:`entry_context` at boot."""
    return MachineState(
        regs=RegisterFile.initial(entry, num_gprs=num_gprs),
        code=dict(code),
        memory=dict(memory or {}),
        queue=StoreQueue(),
    )


def paper_store_program():
    """The Section 2.2 store sequence as a typed Program."""
    from repro.core import Halt, Mov, Store, blue, green
    from repro.program import Program
    from repro.types import INT, RefType

    G, B = Color.GREEN, Color.BLUE
    code = {
        1: Mov("r1", green(5)),
        2: Mov("r2", green(256)),
        3: Store(G, "r2", "r1"),
        4: Mov("r3", blue(5)),
        5: Mov("r4", blue(256)),
        6: Store(B, "r4", "r3"),
        7: Halt(),
    }
    return Program(
        code=code,
        label_types={1: entry_code_type(num_gprs=NUM_GPRS)},
        data_psi={256: RefType(INT)},
        entry=1,
        initial_memory={256: 0},
        num_gprs=NUM_GPRS,
    )


def countdown_loop_program(count: int = 3):
    """A typed countdown loop storing count..1 to address 256.

    Exercises stores, arithmetic, conditional branches (both directions)
    and the two-phase jump back to the loop head.
    """
    from repro.core import ArithRRI, Bz, Halt, Jmp, Mov, Store, blue, green
    from repro.program import Program
    from repro.statics import Var as SVar, var
    from repro.types import INT, CodeType, RefType, RegType

    G, B = Color.GREEN, Color.BLUE
    LOOP, DONE = 6, 20

    # DONE precondition: every register generalized to a fresh variable.
    done_overrides = {}
    for i in range(1, NUM_GPRS + 1):
        color = B if i % 2 == 0 else G
        done_overrides[f"r{i}"] = RegType(color, INT, var(f"d{i}"))
    done_type = entry_code_type(entry=DONE, overrides=done_overrides,
                                mem_var="md")

    # LOOP precondition: paired counter variable n, fresh vars elsewhere.
    loop_overrides = {
        "r1": RegType(G, INT, var("n")),
        "r2": RegType(B, INT, var("n")),
    }
    for i in range(3, NUM_GPRS + 1):
        color = B if i % 2 == 0 else G
        loop_overrides[f"r{i}"] = RegType(color, INT, var(f"l{i}"))
    loop_type = entry_code_type(entry=LOOP, overrides=loop_overrides,
                                mem_var="ml")

    code = {
        1: Mov("r1", green(count)),
        2: Mov("r2", blue(count)),
        # Pre-color the blue-held registers so the loop precondition (which
        # types the even registers blue) is established on first entry too.
        3: Mov("r4", blue(0)),
        4: Mov("r6", blue(0)),
        5: Mov("r8", blue(0)),
        # LOOP:
        6: Mov("r3", green(256)),
        7: Mov("r4", blue(256)),
        8: Store(G, "r3", "r1"),
        9: Store(B, "r4", "r2"),
        10: ArithRRI("sub", "r1", "r1", green(1)),
        11: ArithRRI("sub", "r2", "r2", blue(1)),
        12: Mov("r5", green(DONE)),
        13: Mov("r6", blue(DONE)),
        14: Bz(G, "r1", "r5"),
        15: Bz(B, "r2", "r6"),
        16: Mov("r7", green(LOOP)),
        17: Mov("r8", blue(LOOP)),
        18: Jmp(G, "r7"),
        19: Jmp(B, "r8"),
        # DONE:
        20: Halt(),
    }
    return Program(
        code=code,
        label_types={
            1: entry_code_type(num_gprs=NUM_GPRS),
            LOOP: loop_type,
            DONE: done_type,
        },
        data_psi={256: RefType(INT)},
        entry=1,
        initial_memory={256: 0},
        num_gprs=NUM_GPRS,
        labels_by_name={"main": 1, "loop": LOOP, "done": DONE},
    )
