"""Tests for instruction typing (Figure 7) and code-memory typing (C-t)."""

import pytest

from repro.core import (
    ArithRRI,
    ArithRRR,
    Bz,
    Color,
    Halt,
    Jmp,
    Load,
    Mov,
    PlainStore,
    Store,
    blue,
    green,
)
from repro.core.registers import DEST, PC_B, PC_G
from repro.statics import IntConst, Sel, Upd, Var, const, var
from repro.types import (
    INT,
    CodeType,
    CondType,
    RefType,
    RegType,
    TypeCheckError,
    VOID,
    check_instruction,
    check_program,
)
from tests.helpers import entry_code_type, entry_context

INT_REF = RefType(INT)
G, B = Color.GREEN, Color.BLUE


def reg(color, basic, expr):
    return RegType(color, basic, expr)


class TestArithTyping:
    def test_op2r_tracks_expression(self):
        ctx = entry_context(overrides={
            "r1": reg(G, INT, var_free(5)), "r2": reg(G, INT, var_free(3))})
        post = check_instruction({}, ctx, ArithRRR("add", "r3", "r1", "r2"))
        assert post.gamma.get("r3") == reg(G, INT, IntConst(8))
        assert post.gamma.get(PC_G).expr == IntConst(2)

    def test_op2r_rejects_mixed_colors(self):
        ctx = entry_context(overrides={
            "r1": reg(G, INT, const(5)), "r2": reg(B, INT, const(3))})
        with pytest.raises(TypeCheckError):
            check_instruction({}, ctx, ArithRRR("add", "r3", "r1", "r2"))

    def test_op2r_coerces_references_to_int(self):
        psi = {256: INT_REF}
        ctx = entry_context(overrides={"r1": reg(G, INT_REF, const(256))})
        post = check_instruction(psi, ctx, ArithRRI("add", "r2", "r1", green(4)))
        assert post.gamma.get("r2") == reg(G, INT, IntConst(260))

    def test_op1r_rejects_mixed_colors(self):
        ctx = entry_context(overrides={"r1": reg(G, INT, const(5))})
        with pytest.raises(TypeCheckError):
            check_instruction({}, ctx, ArithRRI("add", "r2", "r1", blue(4)))

    def test_op_on_conditional_register_rejected(self):
        cond = CondType(const(0), reg(G, INT, const(1)))
        ctx = entry_context(overrides={"r1": cond})
        with pytest.raises(TypeCheckError):
            check_instruction({}, ctx, ArithRRI("add", "r2", "r1", green(1)))


class TestMovTyping:
    def test_mov_int_constant(self):
        post = check_instruction({}, entry_context(), Mov("r1", blue(7)))
        assert post.gamma.get("r1") == reg(B, INT, IntConst(7))

    def test_mov_picks_up_psi_type(self):
        psi = {256: INT_REF}
        post = check_instruction(psi, entry_context(), Mov("r1", green(256)))
        assert post.gamma.get("r1") == reg(G, INT_REF, IntConst(256))

    def test_mov_hint_can_force_int(self):
        from repro.types import InstructionHint

        psi = {256: INT_REF}
        post = check_instruction(psi, entry_context(), Mov("r1", green(256)),
                                 InstructionHint(mov_basic=INT))
        assert post.gamma.get("r1") == reg(G, INT, IntConst(256))

    def test_mov_hint_cannot_forge_reference(self):
        from repro.types import InstructionHint

        with pytest.raises(TypeCheckError):
            check_instruction({}, entry_context(), Mov("r1", green(5)),
                              InstructionHint(mov_basic=INT_REF))


class TestMemoryTyping:
    PSI = {256: INT_REF, 257: INT_REF}

    def test_stG_pushes_queue_description(self):
        ctx = entry_context(overrides={
            "r1": reg(G, INT_REF, const(256)), "r2": reg(G, INT, const(5))})
        post = check_instruction(self.PSI, ctx, Store(G, "r1", "r2"))
        assert post.queue == ((const(256), const(5)),)

    def test_stG_requires_green_operands(self):
        ctx = entry_context(overrides={
            "r1": reg(B, INT_REF, const(256)), "r2": reg(B, INT, const(5))})
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Store(G, "r1", "r2"))

    def test_stG_requires_reference_address(self):
        # An int-typed address is only usable when the masked-region
        # extension can bound it inside Psi; address 999 is untyped.
        ctx = entry_context(overrides={
            "r1": reg(G, INT, const(999)), "r2": reg(G, INT, const(5))})
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Store(G, "r1", "r2"))

    def test_stG_accepts_constant_address_in_psi(self):
        # ... but a constant address Psi types as a reference is fine
        # (a one-cell region).
        ctx = entry_context(overrides={
            "r1": reg(G, INT, const(256)), "r2": reg(G, INT, const(5))})
        post = check_instruction(self.PSI, ctx, Store(G, "r1", "r2"))
        assert post.queue == ((const(256), const(5)),)

    def test_stB_commits_matching_pair(self):
        ctx = entry_context(
            overrides={"r1": reg(B, INT_REF, const(256)),
                       "r2": reg(B, INT, const(5))},
            queue=((const(256), const(5)),))
        post = check_instruction(self.PSI, ctx, Store(B, "r1", "r2"))
        assert post.queue == ()
        assert post.mem == Upd(Var("m"), const(256), const(5))

    def test_stB_rejects_mismatched_value(self):
        ctx = entry_context(
            overrides={"r1": reg(B, INT_REF, const(256)),
                       "r2": reg(B, INT, const(6))},
            queue=((const(256), const(5)),))
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Store(B, "r1", "r2"))

    def test_stB_rejects_empty_queue(self):
        ctx = entry_context(overrides={
            "r1": reg(B, INT_REF, const(256)), "r2": reg(B, INT, const(5))})
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Store(B, "r1", "r2"))

    def test_stB_matches_back_of_queue(self):
        # Front pair was pushed later; stB must match the *back*.
        ctx = entry_context(
            overrides={"r1": reg(B, INT_REF, const(256)),
                       "r2": reg(B, INT, const(5))},
            queue=((const(257), const(9)), (const(256), const(5))))
        post = check_instruction(self.PSI, ctx, Store(B, "r1", "r2"))
        assert post.queue == ((const(257), const(9)),)

    def test_paper_cse_example_rejected(self):
        # Section 2.2: stB reusing the *green* registers is ill-typed.
        ctx = entry_context(
            overrides={"r1": reg(G, INT_REF, const(256)),
                       "r2": reg(G, INT, const(5))},
            queue=((const(256), const(5)),))
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Store(B, "r1", "r2"))

    def test_ldG_sees_queue_overlay(self):
        ctx = entry_context(
            overrides={"r1": reg(G, INT_REF, const(256))},
            queue=((const(256), const(5)),))
        post = check_instruction(self.PSI, ctx, Load(G, "r2", "r1"))
        # sel (upd m 256 5) 256 reduces to 5.
        assert post.gamma.get("r2") == reg(G, INT, IntConst(5))

    def test_ldB_ignores_queue(self):
        ctx = entry_context(
            overrides={"r1": reg(B, INT_REF, const(256))},
            queue=((const(256), const(5)),))
        post = check_instruction(self.PSI, ctx, Load(B, "r2", "r1"))
        assert post.gamma.get("r2").expr == Sel(Var("m"), const(256))

    def test_ld_requires_matching_color(self):
        ctx = entry_context(overrides={"r1": reg(B, INT_REF, const(256))})
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Load(G, "r2", "r1"))

    def test_ld_requires_reference(self):
        ctx = entry_context(overrides={"r1": reg(G, INT, const(999))})
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Load(G, "r2", "r1"))


class TestControlFlowTyping:
    TARGET = entry_code_type(entry=9, mem_var="mt")
    PSI = {9: TARGET}

    def _ctx_with_targets(self, **overrides):
        base = {
            "r1": reg(G, self.TARGET, const(9)),
            "r2": reg(B, self.TARGET, const(9)),
        }
        base.update(overrides)
        return entry_context(overrides=base)

    def test_jmpG_announces(self):
        post = check_instruction(self.PSI, self._ctx_with_targets(),
                                 Jmp(G, "r1"))
        assert post.gamma.get(DEST) == reg(G, self.TARGET, const(9))

    def test_jmpG_requires_clear_dest(self):
        ctx = self._ctx_with_targets().with_gamma(
            self._ctx_with_targets().gamma.set(
                DEST, reg(G, INT, const(9))))
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Jmp(G, "r1"))

    def test_jmpG_requires_green_code_pointer(self):
        ctx = self._ctx_with_targets()
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Jmp(G, "r2"))  # blue register

    def test_jmpB_commits(self):
        ctx = self._ctx_with_targets()
        ctx = ctx.with_gamma(ctx.gamma.set(DEST, reg(G, self.TARGET, const(9))))
        # Entry gammas are all-zero; the target is also all-zero except pcs.
        # Registers r1/r2 hold code pointers, which weaken to int... but the
        # target expects (c, int, 0).  Use a target that matches instead.
        target = entry_code_type(entry=9, overrides={
            "r1": reg(G, INT, var("a")),
            "r2": reg(B, INT, var("b")),
        }, mem_var="mt")
        psi = {9: target}
        ctx2 = entry_context(overrides={
            "r1": reg(G, target, const(9)),
            "r2": reg(B, target, const(9)),
        })
        ctx2 = ctx2.with_gamma(ctx2.gamma.set(DEST, reg(G, target, const(9))))
        result = check_instruction(psi, ctx2, Jmp(B, "r2"))
        assert result is VOID

    def test_jmpB_requires_agreeing_targets(self):
        target = entry_code_type(entry=9, overrides={
            "r1": reg(G, INT, var("a")), "r2": reg(B, INT, var("b"))},
            mem_var="mt")
        ctx = entry_context(overrides={
            "r1": reg(G, target, const(9)),
            "r2": reg(B, target, const(8)),  # blue disagrees
        })
        ctx = ctx.with_gamma(ctx.gamma.set(DEST, reg(G, target, const(9))))
        with pytest.raises(TypeCheckError):
            check_instruction({9: target}, ctx, Jmp(B, "r2"))

    def test_jmpB_requires_announced_dest(self):
        ctx = self._ctx_with_targets()  # d is (G, int, 0)
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Jmp(B, "r2"))

    def test_bzG_announces_conditionally(self):
        ctx = self._ctx_with_targets(r3=reg(G, INT, var_free(4)))
        post = check_instruction(self.PSI, ctx, Bz(G, "r3", "r1"))
        dest = post.gamma.get(DEST)
        assert isinstance(dest, CondType)
        assert dest.guard == IntConst(4)
        assert dest.inner == reg(G, self.TARGET, const(9))

    def test_bzG_requires_green_condition(self):
        ctx = self._ctx_with_targets(r3=reg(B, INT, const(4)))
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Bz(G, "r3", "r1"))

    def test_bzB_commits_and_clears_dest(self):
        target = entry_code_type(entry=9, overrides={
            "r1": reg(G, INT, var("a")), "r2": reg(B, INT, var("b")),
            "r3": reg(G, INT, var("zg")), "r4": reg(B, INT, var("zb"))},
            mem_var="mt")
        psi = {9: target}
        ctx = entry_context(overrides={
            "r1": reg(G, target, const(9)),
            "r2": reg(B, target, const(9)),
            "r3": reg(G, INT, const(4)),
            "r4": reg(B, INT, const(4)),
        })
        ctx = ctx.with_gamma(ctx.gamma.set(
            DEST, CondType(const(4), reg(G, target, const(9)))))
        post = check_instruction(psi, ctx, Bz(B, "r4", "r2"))
        assert post is not VOID
        assert post.gamma.get(DEST) == reg(G, INT, IntConst(0))

    def test_bzB_requires_conditional_dest(self):
        ctx = self._ctx_with_targets(r4=reg(B, INT, const(4)))
        with pytest.raises(TypeCheckError):
            check_instruction(self.PSI, ctx, Bz(B, "r4", "r2"))

    def test_bzB_requires_equal_conditions(self):
        target = entry_code_type(entry=9, mem_var="mt")
        psi = {9: target}
        ctx = entry_context(overrides={
            "r2": reg(B, target, const(9)),
            "r4": reg(B, INT, const(5)),  # blue condition differs
        })
        ctx = ctx.with_gamma(ctx.gamma.set(
            DEST, CondType(const(4), reg(G, target, const(9)))))
        with pytest.raises(TypeCheckError):
            check_instruction(psi, ctx, Bz(B, "r4", "r2"))


class TestHaltAndPlain:
    def test_halt_requires_empty_queue(self):
        assert check_instruction({}, entry_context(), Halt()) is VOID
        ctx = entry_context(queue=((const(1), const(2)),))
        with pytest.raises(TypeCheckError):
            check_instruction({}, ctx, Halt())

    def test_plain_instructions_rejected(self):
        with pytest.raises(TypeCheckError):
            check_instruction({}, entry_context(), PlainStore("r1", "r2"))


class TestProgramChecking:
    def test_paper_store_sequence_checks(self):
        code = {
            1: Mov("r1", green(5)),
            2: Mov("r2", green(256)),
            3: Store(G, "r2", "r1"),
            4: Mov("r3", blue(5)),
            5: Mov("r4", blue(256)),
            6: Store(B, "r4", "r3"),
            7: Halt(),
        }
        checked = check_program(
            code,
            label_types={1: entry_code_type()},
            data_psi={256: INT_REF},
        )
        assert set(checked.contexts) == set(range(1, 8))
        # Interior context after the green store shows one pending pair.
        assert len(checked.contexts[4].queue) == 1

    def test_paper_cse_program_rejected(self):
        code = {
            1: Mov("r1", green(5)),
            2: Mov("r2", green(256)),
            3: Store(G, "r2", "r1"),
            4: Store(B, "r2", "r1"),
            5: Halt(),
        }
        with pytest.raises(TypeCheckError) as excinfo:
            check_program(code, {1: entry_code_type()}, {256: INT_REF})
        assert excinfo.value.address == 4

    def test_unlabeled_first_instruction_rejected(self):
        code = {1: Halt(), 2: Halt()}
        with pytest.raises(TypeCheckError):
            check_program(code, {2: entry_code_type(entry=2)}, {})

    def test_fall_off_end_rejected(self):
        code = {1: Mov("r1", green(5))}
        with pytest.raises(TypeCheckError):
            check_program(code, {1: entry_code_type()}, {})

    def test_unreachable_unlabeled_code_rejected(self):
        code = {1: Halt(), 2: Halt()}
        with pytest.raises(TypeCheckError):
            check_program(code, {1: entry_code_type()}, {})

    def test_jump_loop_program_checks(self):
        loop = entry_code_type(entry=1)
        code = {
            1: Mov("r1", green(1)),
            2: Mov("r2", blue(1)),
            3: Jmp(G, "r1"),
            4: Jmp(B, "r2"),
        }
        # The loop target retypes r1/r2, so its precondition must allow their
        # post-mov types.  Entry types everything (c, int, 0), which does NOT
        # match (r1 holds 1) -- use a quantified precondition instead.
        target = entry_code_type(entry=1, overrides={
            "r1": reg(G, INT, var("a")),
            "r2": reg(B, INT, var("b")),
        })
        code_checked = check_program(code, {1: target}, {})
        assert code_checked.contexts[3].queue == ()

    def test_label_is_not_data(self):
        code = {1: Halt()}
        with pytest.raises(TypeCheckError):
            check_program(code, {1: entry_code_type()}, {1: INT_REF})


def var_free(n):
    """A non-trivial closed expression equal to n (exercises the prover)."""
    return IntConst(n)
