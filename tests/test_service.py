"""The durable multi-tenant campaign service (PR 9).

Three layers, tested bottom-up:

* :mod:`repro.service.store` -- the CRC-framed job journal: record /
  replay round trips, compaction, torn-tail and corrupt-line tolerance,
  id continuation across restarts;
* :mod:`repro.service.scheduler` -- weighted fair queueing: priority
  order, tenant interleaving, bounded admission (QueueFull +
  Retry-After), cancellation, drain;
* :mod:`repro.service.server` -- the HTTP control plane: validation,
  cancellation endpoints, retention, backpressure, the concurrent
  submission hammer, and crash-restart recovery with bit-identical
  resumed reports.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.injection.campaign import CampaignConfig, run_campaign
from repro.injection.chaos import (
    fingerprint_digest,
    truncate_journal_tail,
)
from repro.injection.journal import _frame
from repro.service.scheduler import (
    FairScheduler,
    QueueFull,
    SchedulerDraining,
    parse_tenant_weights,
)
from repro.service.server import CampaignService, http_server
from repro.service.store import JobStore, _replay
from repro.workloads import compile_kernel

SMALL = {"max_injection_steps": 3, "max_sites_per_step": 3,
         "max_values_per_site": 2, "seed": 5}


def _job(job_id, status="queued", **extra):
    job = {"id": job_id, "kernel": "adpcm", "mode": "ft", "shards": 1,
           "tenant": "default", "priority": 0, "timeout": None,
           "config": dict(SMALL), "status": status,
           "progress": {"done": 0, "total": None},
           "result": None, "error": None}
    job.update(extra)
    return job


# ---------------------------------------------------------------------------
# JobStore
# ---------------------------------------------------------------------------


class TestJobStore:
    def test_record_replay_round_trip(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.open()
        store.record_submit(_job("job-1"))
        store.record_state("job-1", "running")
        store.record_result("job-1", {"injections": 9})
        store.record_state("job-1", "done")
        store.record_submit(_job("job-2", tenant="teamB", priority=7))
        store.close()

        load = JobStore(str(tmp_path)).open()
        assert set(load.jobs) == {"job-1", "job-2"}
        assert load.jobs["job-1"]["status"] == "done"
        assert load.jobs["job-1"]["result"] == {"injections": 9}
        assert load.jobs["job-2"]["status"] == "queued"
        assert load.jobs["job-2"]["tenant"] == "teamB"
        assert load.jobs["job-2"]["priority"] == 7
        assert load.corrupt_lines == 0

    def test_next_id_continues_after_restart(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.open()
        store.record_submit(_job("job-41"))
        store.record_submit(_job("job-7"))
        store.close()
        assert JobStore(str(tmp_path)).open().next_id == 42

    def test_open_compacts_to_one_line_per_job(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.open()
        store.record_submit(_job("job-1"))
        for status in ("running", "queued", "running", "done"):
            store.record_state("job-1", status)
        store.close()
        reopened = JobStore(str(tmp_path))
        load = reopened.open()
        reopened.close()
        assert load.jobs["job-1"]["status"] == "done"
        with open(reopened.path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 2  # header + one compacted snapshot

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.open()
        store.record_submit(_job("job-1", status="done"))
        store.record_submit(_job("job-2"))
        store.close()
        truncate_journal_tail(store.path, lines=1, torn_bytes=20)
        with pytest.warns(UserWarning, match="corrupt"):
            load = JobStore(str(tmp_path)).open()
        assert set(load.jobs) == {"job-1"}
        assert load.corrupt_lines == 1

    def test_events_for_unknown_jobs_count_as_corrupt(self, tmp_path):
        path = tmp_path / JobStore.JOURNAL_NAME
        with open(path, "w") as handle:
            handle.write(_frame({"magic": "talft-job-journal",
                                 "version": 1}))
            handle.write(_frame({"event": "state", "id": "job-9",
                                 "status": "done"}))
            handle.write(_frame({"event": "wat"}))
        with pytest.warns(UserWarning):
            load = _replay(str(path))
        assert load.jobs == {}
        assert load.corrupt_lines == 2

    def test_recording_requires_open(self, tmp_path):
        with pytest.raises(RuntimeError, match="open"):
            JobStore(str(tmp_path)).record_state("job-1", "done")


# ---------------------------------------------------------------------------
# FairScheduler
# ---------------------------------------------------------------------------


class _Recorder:
    """Stub runner: records dispatch order, optionally blocks."""

    def __init__(self):
        self.order = []
        self.gate = threading.Event()
        self.blocking = False
        self.started = threading.Event()

    def __call__(self, job_id):
        self.order.append(job_id)
        self.started.set()
        if self.blocking:
            self.gate.wait(timeout=30)


def _drained(scheduler, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if scheduler.idle():
            return True
        time.sleep(0.01)
    return False


class TestFairScheduler:
    def _blocked(self, recorder, **kwargs):
        """A scheduler whose single worker is parked on a blocker job,
        so everything submitted next queues up behind it."""
        recorder.blocking = True
        scheduler = FairScheduler(recorder, max_concurrent=1, **kwargs)
        scheduler.submit("blocker")
        assert recorder.started.wait(timeout=10)
        return scheduler

    def test_priority_within_tenant_then_fifo(self):
        recorder = _Recorder()
        scheduler = self._blocked(recorder, queue_limit=10)
        for job_id, priority in (("low", -5), ("mid-a", 0), ("high", 9),
                                 ("mid-b", 0)):
            scheduler.submit(job_id, tenant="t", priority=priority)
        recorder.gate.set()
        assert _drained(scheduler)
        assert recorder.order == ["blocker", "high", "mid-a", "mid-b",
                                  "low"]

    def test_equal_weights_alternate_tenants(self):
        recorder = _Recorder()
        scheduler = self._blocked(recorder, queue_limit=20)
        for index in range(4):
            scheduler.submit(f"a{index}", tenant="alpha")
        for index in range(4):
            scheduler.submit(f"b{index}", tenant="beta")
        recorder.gate.set()
        assert _drained(scheduler)
        tenants = [job_id[0] for job_id in recorder.order[1:]]
        # Strict alternation: every prefix is balanced within one job.
        for length in range(1, len(tenants) + 1):
            prefix = tenants[:length]
            assert abs(prefix.count("a") - prefix.count("b")) <= 1, tenants

    def test_weighted_tenant_gets_proportional_slots(self):
        recorder = _Recorder()
        scheduler = self._blocked(
            recorder, queue_limit=30,
            tenant_weights={"heavy": 2.0, "light": 1.0})
        for index in range(6):
            scheduler.submit(f"h{index}", tenant="heavy")
        for index in range(3):
            scheduler.submit(f"l{index}", tenant="light")
        recorder.gate.set()
        assert _drained(scheduler)
        tenants = [job_id[0] for job_id in recorder.order[1:]]
        # Weight 2 vs 1: every 3-dispatch window holds 2 heavy + 1 light
        # until the light tenant runs dry.
        assert tenants[:9].count("l") == 3
        for window_start in (0, 3, 6):
            window = tenants[window_start:window_start + 3]
            assert window.count("h") == 2 and window.count("l") == 1, tenants

    def test_queue_full_raises_with_retry_after(self):
        recorder = _Recorder()
        scheduler = self._blocked(recorder, queue_limit=2)
        scheduler.submit("q1")
        scheduler.submit("q2")
        with pytest.raises(QueueFull) as excinfo:
            scheduler.submit("q3")
        assert excinfo.value.retry_after >= 1
        recorder.gate.set()
        assert _drained(scheduler)
        assert "q3" not in recorder.order

    def test_cancel_queued_running_and_unknown(self):
        recorder = _Recorder()
        scheduler = self._blocked(recorder, queue_limit=10)
        scheduler.submit("victim")
        assert scheduler.cancel("victim") == "queued"
        assert scheduler.cancel("blocker") == "running"
        assert scheduler.cancel_event("blocker").is_set()
        assert scheduler.cancel("nope") is None
        recorder.gate.set()
        assert _drained(scheduler)
        assert "victim" not in recorder.order

    def test_drain_refuses_new_work_and_unqueues(self):
        recorder = _Recorder()
        scheduler = self._blocked(recorder, queue_limit=10)
        scheduler.submit("parked")
        recorder.gate.set()
        assert scheduler.drain(timeout=10)
        assert scheduler.drain_event.is_set()
        assert "parked" not in recorder.order
        with pytest.raises(SchedulerDraining):
            scheduler.submit("late")

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_concurrent"):
            FairScheduler(lambda job_id: None, max_concurrent=0)
        with pytest.raises(ValueError, match="queue_limit"):
            FairScheduler(lambda job_id: None, queue_limit=0)
        with pytest.raises(ValueError, match="positive"):
            FairScheduler(lambda job_id: None,
                          tenant_weights={"t": 0.0})

    def test_parse_tenant_weights(self):
        assert parse_tenant_weights(["teamA=2", "teamB=1.5"]) == {
            "teamA": 2.0, "teamB": 1.5}
        for bad in ("teamA", "=2", "teamA=x", "teamA=0", "teamA=-1"):
            with pytest.raises(ValueError, match="invalid tenant weight"):
                parse_tenant_weights([bad])


# ---------------------------------------------------------------------------
# The HTTP service
# ---------------------------------------------------------------------------


def _serve(service=None):
    server, service = http_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, service, f"http://127.0.0.1:{server.server_address[1]}"


def _request(method, url, payload=None, headers=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), \
                dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture
def service_trio():
    server, service, base = _serve()
    try:
        yield server, service, base
    finally:
        server.shutdown()
        server.server_close()
        service._scheduler.drain(timeout=30, interrupt=True)


SLOW = {"max_injection_steps": 24, "max_sites_per_step": 6,
        "max_values_per_site": 2, "seed": 7}


def _wait_running(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = service.job(job_id)
        if job["status"] == "running" and job["progress"]["done"] > 0:
            return job
        if job["status"] not in ("queued", "running"):
            raise AssertionError(f"job settled early: {job}")
        time.sleep(0.01)
    raise AssertionError(f"{job_id} never started running")


class TestServiceValidation:
    @pytest.mark.parametrize("payload,complaint", [
        ({"kernel": "adpcm", "tenant": ""}, "tenant"),
        ({"kernel": "adpcm", "tenant": 7}, "tenant"),
        ({"kernel": "adpcm", "priority": "high"}, "priority"),
        ({"kernel": "adpcm", "priority": 5000}, "priority"),
        ({"kernel": "adpcm", "timeout": 0}, "timeout"),
        ({"kernel": "adpcm", "timeout": "soon"}, "timeout"),
        ({"kernel": "adpcm", "surprise": 1}, "unknown job keys"),
    ])
    def test_submission_validation(self, service_trio, payload, complaint):
        _, _, base = service_trio
        status, body, _ = _request("POST", base + "/jobs", payload)
        assert status == 400
        assert complaint in body["error"]

    def test_oversized_body_is_413(self, service_trio):
        _, _, base = service_trio
        status, body, _ = _request(
            "POST", base + "/jobs", {"kernel": "adpcm"},
            headers={"Content-Length": str(2 << 20)})
        assert status == 413
        assert "exceeds" in body["error"]

    def test_unknown_jobs_filter_is_400(self, service_trio):
        _, _, base = service_trio
        status, body, _ = _request("GET", base + "/jobs?owner=me")
        assert status == 400
        assert "unknown query parameters" in body["error"]

    def test_stride_knob_maps_to_step_stride(self, service_trio):
        _, service, base = service_trio
        status, body, _ = _request("POST", base + "/jobs", {
            "kernel": "adpcm",
            "config": dict(SMALL, stride=2)})
        assert status == 202, body
        job = service.wait(body["id"], timeout=120)
        assert job["status"] == "done", job["error"]


class TestCancellationAndTimeouts:
    def test_cancel_queued_job(self, service_trio):
        _, service, base = service_trio
        _, blocker, _ = _request("POST", base + "/jobs",
                                 {"kernel": "adpcm", "config": SLOW})
        _, queued, _ = _request("POST", base + "/jobs",
                                {"kernel": "adpcm", "config": SMALL})
        status, body, _ = _request("DELETE",
                                   f"{base}/jobs/{queued['id']}")
        assert (status, body["status"]) == (200, "cancelled")
        assert service.job(queued["id"])["status"] == "cancelled"
        # Idempotence-ish: a settled job refuses further cancels.
        status, body, _ = _request("DELETE",
                                   f"{base}/jobs/{queued['id']}")
        assert status == 409
        _request("DELETE", f"{base}/jobs/{blocker['id']}")
        service.wait(blocker["id"], timeout=120)

    def test_cancel_running_job_aborts_cooperatively(self, service_trio):
        _, service, base = service_trio
        _, body, _ = _request("POST", base + "/jobs",
                              {"kernel": "adpcm", "config": SLOW})
        _wait_running(service, body["id"])
        status, verdict, _ = _request("DELETE", f"{base}/jobs/{body['id']}")
        assert (status, verdict["status"]) == (202, "cancelling")
        job = service.wait(body["id"], timeout=120)
        assert job["status"] == "cancelled"
        assert job["result"] is None

    def test_cancel_unknown_job_is_404(self, service_trio):
        _, _, base = service_trio
        status, _, _ = _request("DELETE", base + "/jobs/job-404")
        assert status == 404

    def test_timeout_settles_as_error(self, service_trio):
        _, service, base = service_trio
        _, body, _ = _request("POST", base + "/jobs", {
            "kernel": "adpcm", "timeout": 0.001, "config": SLOW})
        job = service.wait(body["id"], timeout=120)
        assert job["status"] == "error"
        assert "timed out" in job["error"]


class TestRetentionAndFilters:
    def test_settled_retention_cap(self, tmp_path):
        service = CampaignService(state_dir=str(tmp_path),
                                  job_retention=2)
        ids = [service.submit({"kernel": "adpcm", "config": SMALL})
               for _ in range(4)]
        for job_id in ids:
            service.wait(job_id, timeout=240)
        # Give the final _transition's lock window a beat to settle.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and \
                len(service.jobs()["jobs"]) != 2:
            time.sleep(0.02)
        live = {entry["id"] for entry in service.jobs()["jobs"]}
        assert live == set(ids[-2:])
        service.close()
        # The journal keeps the full history regardless of retention.
        load = JobStore(str(tmp_path)).open()
        assert set(load.jobs) >= set(ids)

    def test_status_and_tenant_filters(self, service_trio):
        _, service, base = service_trio
        _, blocker, _ = _request("POST", base + "/jobs", {
            "kernel": "adpcm", "tenant": "ops", "config": SLOW})
        _, queued, _ = _request("POST", base + "/jobs", {
            "kernel": "adpcm", "tenant": "science", "config": SMALL})
        status, body, _ = _request("GET", base + "/jobs?tenant=science")
        assert [entry["id"] for entry in body["jobs"]] == [queued["id"]]
        status, body, _ = _request("GET", base + "/jobs?status=queued")
        assert {entry["id"] for entry in body["jobs"]} == {queued["id"]}
        _request("DELETE", f"{base}/jobs/{queued['id']}")
        _request("DELETE", f"{base}/jobs/{blocker['id']}")
        service.wait(blocker["id"], timeout=120)


class TestBackpressure:
    def test_saturated_queue_answers_429_with_retry_after(self, tmp_path):
        service = CampaignService(queue_limit=2)
        server, service, base = _serve(service)
        try:
            _, blocker, _ = _request("POST", base + "/jobs",
                                     {"kernel": "adpcm", "config": SLOW})
            accepted = [blocker["id"]]
            refused = None
            for _ in range(6):
                status, body, headers = _request(
                    "POST", base + "/jobs",
                    {"kernel": "adpcm", "config": SMALL})
                if status == 202:
                    accepted.append(body["id"])
                else:
                    refused = (status, body, headers)
                    break
            assert refused is not None, "queue never filled"
            status, body, headers = refused
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after"] == int(headers["Retry-After"])
            for job_id in accepted:
                _request("DELETE", f"{base}/jobs/{job_id}")
            for job_id in accepted:
                service.wait(job_id, timeout=120)
        finally:
            server.shutdown()
            server.server_close()
            service._scheduler.drain(timeout=30, interrupt=True)


class TestConcurrentSubmission:
    def test_hammer_unique_ids_all_settle_fair_order(self):
        """The satellite contract: many threads POST /jobs at once; ids
        stay unique, everything settles, and dispatch interleaves the
        two tenants fairly."""
        per_tenant = 6
        service = CampaignService(queue_limit=64)
        server, service, base = _serve(service)
        try:
            # Park the single worker on a blocker too slow to finish on
            # its own; it is cancelled once the hammer settles.  A
            # blocker that can finish mid-hammer releases the worker
            # against a partial (unequal) backlog, and the fair-queue
            # ordering asserted below only holds for equal backlogs.
            _, blocker, _ = _request("POST", base + "/jobs", {
                "kernel": "adpcm",
                "config": dict(SLOW, max_injection_steps=100_000)})
            _wait_running(service, blocker["id"])
            results = []
            errors = []
            lock = threading.Lock()

            def _hammer(tenant):
                try:
                    status, body, _ = _request("POST", base + "/jobs", {
                        "kernel": "adpcm", "tenant": tenant,
                        "config": dict(SMALL, max_injection_steps=1)})
                    with lock:
                        results.append((tenant, status, body))
                except Exception as exc:  # pragma: no cover
                    with lock:
                        errors.append(exc)

            threads = [threading.Thread(target=_hammer,
                                        args=(tenant,))
                       for tenant in ["alpha", "beta"] * per_tenant]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert all(status == 202 for _, status, _ in results)
            ids = [body["id"] for _, _, body in results]
            assert len(set(ids)) == len(ids) == 2 * per_tenant
            # The fairness precondition: the entire backlog queued while
            # the worker was still parked on the blocker.
            assert service.job(blocker["id"])["status"] == "running"
            assert all(service.job(job_id)["status"] == "queued"
                       for job_id in ids)
            status, verdict, _ = _request(
                "DELETE", f"{base}/jobs/{blocker['id']}")
            assert (status, verdict["status"]) == (202, "cancelling")
            assert service.wait(blocker["id"],
                                timeout=120)["status"] == "cancelled"
            for job_id in ids:
                job = service.wait(job_id, timeout=300)
                assert job["status"] == "done", job["error"]
            # Fair-queue ordering: sort by dispatch order and check the
            # two tenants alternate (equal weights, equal backlogs).
            dispatched = sorted(
                (service.job(job_id) for job_id in ids),
                key=lambda job: job["run_seq"])
            tenants = [job["tenant"] for job in dispatched]
            for length in range(1, len(tenants) + 1):
                prefix = tenants[:length]
                imbalance = abs(prefix.count("alpha")
                                - prefix.count("beta"))
                assert imbalance <= 1, tenants
        finally:
            server.shutdown()
            server.server_close()
            service._scheduler.drain(timeout=30, interrupt=True)


# ---------------------------------------------------------------------------
# Durability: restart recovery
# ---------------------------------------------------------------------------


class TestRestartRecovery:
    def test_settled_and_queued_jobs_survive_restart(self, tmp_path):
        service = CampaignService(state_dir=str(tmp_path))
        done_id = service.submit({"kernel": "adpcm", "config": SMALL})
        done_before = service.wait(done_id, timeout=240)
        # Survive a *graceful* stop first: drain with nothing running.
        service.close()

        service = CampaignService(state_dir=str(tmp_path))
        restored = service.job(done_id)
        assert restored["status"] == "done"
        assert restored["result"] == done_before["result"]
        service.close()

    def test_interrupted_job_resumes_bit_identically(self, tmp_path):
        """Simulated crash: a job journaled as ``running`` whose
        campaign journal holds only a prefix of its steps.  The next
        service start must resume it and publish the exact fingerprint
        and latency buckets of an uninterrupted run."""
        program = compile_kernel("adpcm", "ft").program
        config = CampaignConfig(**SMALL)
        reference = run_campaign(program, config)

        store = JobStore(str(tmp_path))
        store.open()
        job = _job("job-1", status="running", config=dict(SMALL))
        store.record_submit(job)
        store.record_state("job-1", "running")
        campaign_journal = store.campaign_journal_path("job-1")
        store.close()
        run_campaign(program, config, journal_path=campaign_journal)
        # Lose the tail: the "crash" happened mid-campaign.
        truncate_journal_tail(campaign_journal, lines=1)

        service = CampaignService(state_dir=str(tmp_path))
        resumed = service.wait("job-1", timeout=240)
        service.close()
        assert resumed["status"] == "done", resumed["error"]
        assert resumed["result"]["fingerprint"] == \
            fingerprint_digest(reference)
        assert resumed["result"]["latency_buckets"] == {
            str(bucket): count
            for bucket, count in sorted(reference.latency_buckets.items())}
        assert resumed["result"]["resilience"]["resumed_steps"] > 0

    def test_drain_parks_running_job_for_next_start(self, tmp_path):
        """SIGTERM semantics in-process: drain interrupts the running
        job at a step boundary, journals it back to queued, and the next
        start finishes it with a bit-identical report."""
        program = compile_kernel("adpcm", "ft").program
        reference = run_campaign(program, CampaignConfig(**SLOW))

        service = CampaignService(state_dir=str(tmp_path))
        job_id = service.submit({"kernel": "adpcm", "config": SLOW})
        _wait_running(service, job_id)
        assert service.drain(timeout=60)
        parked = service.job(job_id)
        assert parked["status"] == "queued"
        assert 0 < parked["progress"]["done"] < parked["progress"]["total"]

        service = CampaignService(state_dir=str(tmp_path))
        finished = service.wait(job_id, timeout=240)
        service.close()
        assert finished["status"] == "done", finished["error"]
        assert finished["result"]["fingerprint"] == \
            fingerprint_digest(reference)
        assert finished["result"]["resilience"]["resumed_steps"] > 0


# ---------------------------------------------------------------------------
# Handler robustness
# ---------------------------------------------------------------------------


class _GoneClient:
    """A wfile whose client already hung up."""

    def write(self, data):
        raise BrokenPipeError("client went away")


class TestReplyGuard:
    def test_reply_swallows_broken_pipe(self):
        from repro.service.server import _Handler

        handler = _Handler.__new__(_Handler)
        handler.wfile = _GoneClient()
        handler.send_response = lambda status: None
        handler.send_header = lambda name, value: None
        handler.end_headers = lambda: None
        handler.close_connection = False
        handler._reply(200, {"status": "ok"})  # must not raise
        assert handler.close_connection is True
