"""Tests for the synthetic workload generator."""

import pytest

from repro.core import Outcome, run_to_completion
from repro.lang import check_source, interpret, parse_source
from repro.simulator import simulate
from repro.workloads import WorkloadSpec, generate_compiled, generate_source


SPECS = [
    WorkloadSpec(chains=1, loads_per_chain=0, branches=0, iterations=8),
    WorkloadSpec(chains=4, loads_per_chain=1, branches=0, iterations=8),
    WorkloadSpec(chains=2, loads_per_chain=2, branches=3, iterations=8),
    WorkloadSpec(chains=8, loads_per_chain=1, branches=1, iterations=6),
]


class TestGeneration:
    def test_deterministic(self):
        spec = SPECS[1]
        assert generate_source(spec) == generate_source(spec)

    def test_seed_changes_data(self):
        a = generate_source(WorkloadSpec(seed=1))
        b = generate_source(WorkloadSpec(seed=2))
        assert a != b

    def test_name_encodes_knobs(self):
        spec = WorkloadSpec(chains=3, loads_per_chain=2, branches=1,
                            iterations=9)
        assert spec.name() == "synth_c3_l2_b1_i9"

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            generate_source(WorkloadSpec(chains=0))
        with pytest.raises(ValueError):
            generate_source(WorkloadSpec(iterations=0))
        with pytest.raises(ValueError):
            generate_source(WorkloadSpec(loads_per_chain=-1))

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name())
    def test_generated_source_is_valid_mwl(self, spec):
        ast = parse_source(generate_source(spec))
        check_source(ast)
        result = interpret(ast)
        assert len(result.writes) == spec.chains


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name())
class TestGeneratedPrograms:
    def test_differential(self, spec):
        ast = parse_source(generate_source(spec))
        check_source(ast)
        expected = [(a, i, v) for a, i, v in interpret(ast).writes]
        for mode in ("baseline", "ft"):
            compiled = generate_compiled(spec, mode)
            trace = run_to_completion(compiled.program.boot(),
                                      max_steps=2_000_000)
            assert trace.outcome is Outcome.HALTED
            observed = [
                compiled.lowered.layout.describe(address) + (value,)
                for address, value in trace.outputs
            ]
            assert observed == expected

    def test_ft_typechecks(self, spec):
        generate_compiled(spec, "ft").program.check()

    def test_overhead_in_sane_range(self, spec):
        protected = generate_compiled(spec, "ft")
        baseline = generate_compiled(spec, "baseline")
        ratio = simulate(protected).cycles / simulate(baseline).cycles
        assert 1.0 < ratio < 2.5


class TestMaskedIndexing:
    """Regression: the module contract promises masked indexing into the
    power-of-two ``data[64]`` array, but the generator used to emit raw
    ``data[(i * stride + chain)]`` -- specs with ``iterations * stride >=
    64`` indexed past the declared array and leaned on the runtime's
    implicit wrap instead of the promised source-level mask."""

    LARGE = WorkloadSpec(chains=2, loads_per_chain=2, branches=1,
                         iterations=128)

    def test_data_reads_are_masked_in_source(self):
        from repro.lang.ast import Binary, Index, IntLit
        from repro.workloads.generator import _DATA_SIZE

        ast = parse_source(generate_source(self.LARGE))

        reads = []

        def walk_expr(expr):
            if isinstance(expr, Index):
                reads.append(expr)
                walk_expr(expr.index)
            elif isinstance(expr, Binary):
                walk_expr(expr.left)
                walk_expr(expr.right)

        def walk_body(body):
            for stmt in body:
                for attr in ("init", "value", "index", "cond", "expr"):
                    child = getattr(stmt, attr, None)
                    if child is not None:
                        walk_expr(child)
                for attr in ("then_body", "else_body", "body"):
                    walk_body(getattr(stmt, attr, ()))

        walk_body(ast.main)
        data_reads = [read for read in reads if read.array == "data"]
        assert data_reads, "large spec must read the data array"
        for read in data_reads:
            assert isinstance(read.index, Binary) and read.index.op == "&", \
                f"unmasked data read {read}"
            assert read.index.right == IntLit(value=_DATA_SIZE - 1)

    def test_large_spec_differential(self):
        # With the mask the large spec stays a valid kernel end to end:
        # interpreter and both compiled builds agree on every write.
        ast = parse_source(generate_source(self.LARGE))
        check_source(ast)
        expected = [(a, i, v) for a, i, v in interpret(ast).writes]
        for mode in ("baseline", "ft"):
            compiled = generate_compiled(self.LARGE, mode)
            trace = run_to_completion(compiled.program.boot(),
                                      max_steps=4_000_000)
            assert trace.outcome is Outcome.HALTED
            observed = [
                compiled.lowered.layout.describe(address) + (value,)
                for address, value in trace.outputs
            ]
            assert observed == expected


class TestCharacterizationTrend:
    def test_overhead_grows_with_ilp(self):
        # The headline mechanism: serial code hides duplication; parallel
        # code pays for it.
        def ratio(chains):
            spec = WorkloadSpec(chains=chains, loads_per_chain=1,
                                iterations=16, seed=3)
            return (simulate(generate_compiled(spec, "ft")).cycles
                    / simulate(generate_compiled(spec, "baseline")).cycles)

        assert ratio(8) > ratio(1)
