"""Tests for normalization and the equality prover.

Includes hypothesis property tests checking the two facts the type system
depends on: normalization preserves denotation, and the prover is *sound*
(a True answer implies the expressions agree under every environment we can
sample).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.statics import (
    BinExpr,
    EmptyMem,
    IntConst,
    KIND_INT,
    KIND_MEM,
    KindContext,
    Sel,
    Upd,
    Var,
    add,
    const,
    denote,
    mul,
    normalize_int,
    normalize_mem,
    prove_distinct,
    prove_equal,
    prove_nonzero,
    prove_zero,
    sub,
    var,
)

X, Y, Z = var("x"), var("y"), var("z")
M = Var("m")
INT_CTX = KindContext({"x": KIND_INT, "y": KIND_INT, "z": KIND_INT, "m": KIND_MEM})


class TestIntegerNormalization:
    def test_constant_folding(self):
        assert normalize_int(mul(add(const(2), const(3)), const(4))) == const(20)

    def test_commutativity(self):
        assert normalize_int(add(X, Y)) == normalize_int(add(Y, X))
        assert normalize_int(mul(X, Y)) == normalize_int(mul(Y, X))

    def test_associativity(self):
        assert normalize_int(add(add(X, Y), Z)) == normalize_int(add(X, add(Y, Z)))

    def test_distribution(self):
        assert normalize_int(mul(X, add(Y, const(1)))) == \
            normalize_int(add(mul(X, Y), X))

    def test_cancellation(self):
        assert normalize_int(sub(add(X, Y), Y)) == normalize_int(X)
        assert normalize_int(sub(X, X)) == const(0)

    def test_sll_by_constant_is_multiplication(self):
        assert normalize_int(BinExpr("sll", X, const(3))) == \
            normalize_int(mul(const(8), X))

    def test_nonlinear_op_constant_folds(self):
        assert normalize_int(BinExpr("slt", const(1), const(2))) == const(1)
        assert normalize_int(BinExpr("and", const(6), const(3))) == const(2)

    def test_nonlinear_op_atoms_compare_structurally(self):
        left = BinExpr("xor", add(X, Y), Z)
        right = BinExpr("xor", add(Y, X), Z)
        assert normalize_int(left) == normalize_int(right)


class TestMemoryNormalization:
    def test_shadowed_update_dropped(self):
        mem = Upd(Upd(M, const(5), X), const(5), Y)
        assert normalize_mem(mem) == Upd(M, const(5), normalize_int(Y))

    def test_distinct_updates_sorted(self):
        a = Upd(Upd(M, const(2), X), const(1), Y)
        b = Upd(Upd(M, const(1), Y), const(2), X)
        assert normalize_mem(a) == normalize_mem(b)

    def test_unknown_aliasing_preserves_order(self):
        # x and y may alias: the two orders must NOT be conflated.
        a = Upd(Upd(M, X, const(1)), Y, const(2))
        b = Upd(Upd(M, Y, const(2)), X, const(1))
        assert normalize_mem(a) != normalize_mem(b)

    def test_symbolically_distinct_addresses_sorted(self):
        # x and x+1 are provably distinct, so the updates commute.
        a = Upd(Upd(M, add(X, const(1)), Y), X, Z)
        b = Upd(Upd(M, X, Z), add(X, const(1)), Y)
        assert normalize_mem(a) == normalize_mem(b)


class TestSelectReduction:
    def test_select_hits_matching_update(self):
        expr = Sel(Upd(M, X, Y), X)
        assert normalize_int(expr) == normalize_int(Y)

    def test_select_skips_distinct_update(self):
        expr = Sel(Upd(M, add(X, const(1)), Y), X)
        assert normalize_int(expr) == Sel(M, normalize_int(X))

    def test_select_blocked_by_possible_alias(self):
        expr = Sel(Upd(M, Y, Z), X)
        normal = normalize_int(expr)
        assert isinstance(normal, Sel)
        assert isinstance(normal.mem, Upd)  # update retained

    def test_select_through_shadow(self):
        mem = Upd(Upd(M, X, const(1)), X, const(2))
        assert normalize_int(Sel(mem, X)) == const(2)

    def test_select_of_concrete_memory(self):
        mem = Upd(Upd(EmptyMem(), const(1), const(10)), const(2), const(20))
        assert normalize_int(Sel(mem, const(2))) == const(20)
        assert normalize_int(Sel(mem, const(1))) == const(10)


class TestProver:
    def test_equal_polynomials(self):
        left = mul(add(X, Y), add(X, Y))
        right = add(add(mul(X, X), mul(const(2), mul(X, Y))), mul(Y, Y))
        assert prove_equal(left, right, INT_CTX)

    def test_unequal_polynomials(self):
        assert not prove_equal(add(X, const(1)), X, INT_CTX)

    def test_distinct_by_constant_offset(self):
        assert prove_distinct(add(X, const(1)), X, INT_CTX)

    def test_not_distinct_when_unknown(self):
        assert not prove_distinct(X, Y, INT_CTX)
        assert not prove_equal(X, Y, INT_CTX)

    def test_zero_and_nonzero(self):
        assert prove_zero(sub(X, X), INT_CTX)
        assert prove_nonzero(const(5))
        assert not prove_nonzero(X, INT_CTX)

    def test_memory_equality(self):
        left = Upd(Upd(M, const(1), X), const(2), Y)
        right = Upd(Upd(M, const(2), Y), const(1), X)
        assert prove_equal(left, right, INT_CTX)

    def test_memory_inequality(self):
        assert not prove_equal(Upd(M, const(1), X), M, INT_CTX)

    def test_kind_mismatch_is_not_equal(self):
        assert not prove_equal(M, const(0), INT_CTX)

    def test_queue_overlay_scenario(self):
        # The ldG-t vs ldB-t scenario: green sees sel((upd Em (Ed,Es)), A)
        # with the store pending; blue sees sel Em' A after the store commits,
        # where Em' = upd Em Ed Es.  Both must be provably equal.
        em = M
        ed, es, a = add(X, const(4)), mul(Y, const(2)), add(X, const(4))
        green_view = Sel(Upd(em, ed, es), a)
        blue_view = normalize_int(es)
        assert prove_equal(green_view, blue_view, INT_CTX)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

_INT_NAMES = ("x", "y", "z")
_MEM_ADDRS = (1, 2, 3)


def int_exprs(depth=3):
    base = st.one_of(
        st.integers(-8, 8).map(IntConst),
        st.sampled_from(_INT_NAMES).map(Var),
    )
    if depth == 0:
        return base
    return st.one_of(
        base,
        st.tuples(
            st.sampled_from(["add", "sub", "mul"]),
            int_exprs(depth - 1),
            int_exprs(depth - 1),
        ).map(lambda t: BinExpr(*t)),
        st.tuples(mem_exprs(depth - 1), st.sampled_from(_MEM_ADDRS).map(IntConst))
        .map(lambda t: Sel(*t)),
    )


def mem_exprs(depth=2):
    base = st.just(Var("m"))
    if depth == 0:
        return base
    return st.one_of(
        base,
        st.tuples(
            mem_exprs(depth - 1),
            st.sampled_from(_MEM_ADDRS).map(IntConst),
            int_exprs(depth - 1),
        ).map(lambda t: Upd(*t)),
    )


def environments():
    return st.fixed_dictionaries(
        {
            "x": st.integers(-5, 5),
            "y": st.integers(-5, 5),
            "z": st.integers(-5, 5),
            "m": st.fixed_dictionaries(
                {a: st.integers(-5, 5) for a in _MEM_ADDRS}
            ),
        }
    )


@settings(max_examples=200, deadline=None)
@given(expr=int_exprs(), env=environments())
def test_normalization_preserves_denotation(expr, env):
    assert denote(normalize_int(expr), env) == denote(expr, env)


@settings(max_examples=200, deadline=None)
@given(expr=mem_exprs(), env=environments())
def test_memory_normalization_preserves_denotation(expr, env):
    assert denote(normalize_mem(expr), env) == denote(expr, env)


@settings(max_examples=200, deadline=None)
@given(left=int_exprs(), right=int_exprs(), env=environments())
def test_prover_soundness_on_random_pairs(left, right, env):
    # prove_equal => equal under every sampled environment;
    # prove_distinct => different under every sampled environment.
    if prove_equal(left, right, INT_CTX):
        assert denote(left, env) == denote(right, env)
    if prove_distinct(left, right, INT_CTX):
        assert denote(left, env) != denote(right, env)


@settings(max_examples=100, deadline=None)
@given(expr=int_exprs())
def test_normalization_is_idempotent(expr):
    normal = normalize_int(expr)
    assert normalize_int(normal) == normal


@settings(max_examples=100, deadline=None)
@given(expr=mem_exprs())
def test_memory_normalization_is_idempotent(expr):
    normal = normalize_mem(expr)
    assert normalize_mem(normal) == normal
