"""Tests for the unified observability layer (``repro.observe``).

Two contracts matter:

1. the metrics machinery itself (registries, merging, Prometheus
   exposition, events, progress, phase timers) behaves as documented;
2. observability is *observational*: a campaign instrumented into a live
   registry produces a report bit-identical to one with recording
   disabled.
"""

import io
import json

import pytest

from repro.injection import CampaignConfig, run_campaign
from repro.injection.chaos import report_fingerprint
from repro.observe import (
    MetricsRegistry,
    NullRegistry,
    ProgressReporter,
    SECONDS_BUCKETS,
    STEPS_BUCKETS,
    configure_events,
    disabled,
    emit,
    events_enabled,
    get_registry,
    phase_timer,
    set_registry,
    snapshot,
    write_metrics,
)
from tests.helpers import countdown_loop_program, paper_store_program


@pytest.fixture
def registry():
    """A fresh default registry, restored after the test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


class TestRegistry:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("widgets_total")
        counter.inc()
        counter.inc(4)
        assert registry.counter("widgets_total").value == 5

    def test_labels_separate_series(self, registry):
        registry.counter("r_total", kind="a").inc(1)
        registry.counter("r_total", kind="b").inc(2)
        assert registry.counter("r_total", kind="a").value == 1
        assert registry.counter("r_total", kind="b").value == 2

    def test_label_order_is_canonical(self, registry):
        registry.counter("x_total", a=1, b=2).inc()
        assert registry.counter("x_total", b=2, a=1).value == 1

    def test_gauge_last_write_wins(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.set(1)
        assert registry.gauge("depth").value == 1

    def test_histogram_buckets_and_overflow(self, registry):
        histogram = registry.histogram("lat", buckets=(1, 2, 4))
        for value in (0.5, 1, 3, 100):
            histogram.observe(value)
        # bounds are inclusive upper edges; 100 falls in the overflow.
        assert histogram.buckets == [2, 0, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(104.5)

    def test_as_dict_merge_round_trip(self, registry):
        registry.counter("c_total").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=STEPS_BUCKETS).observe(5)
        other = MetricsRegistry()
        other.merge_dict(registry.as_dict())
        other.merge_dict(registry.as_dict())
        assert other.counter("c_total").value == 4  # counters add
        assert other.gauge("g").value == 7          # gauges keep max
        assert other.histogram("h", buckets=STEPS_BUCKETS).count == 2

    def test_merge_with_host_label_keeps_series_distinct(self, registry):
        """Shard-fleet telemetry: identical metric names from different
        workers must not collide -- ``extra_labels={"host": ...}`` gives
        each worker's series its own labelled identity."""
        worker_a = MetricsRegistry()
        worker_a.counter("shard_worker_steps_total").inc(3)
        worker_b = MetricsRegistry()
        worker_b.counter("shard_worker_steps_total").inc(5)
        registry.merge_dict(worker_a.as_dict(),
                            extra_labels={"host": "alpha:1"})
        registry.merge_dict(worker_b.as_dict(),
                            extra_labels={"host": "beta:2"})
        assert registry.counter("shard_worker_steps_total",
                                host="alpha:1").value == 3
        assert registry.counter("shard_worker_steps_total",
                                host="beta:2").value == 5
        text = registry.to_prometheus()
        assert 'shard_worker_steps_total{host="alpha:1"} 3' in text
        assert 'shard_worker_steps_total{host="beta:2"} 5' in text

    def test_merge_host_label_overrides_colliding_label(self, registry):
        """``extra_labels`` wins over a same-named label in the payload --
        the coordinator's host attribution is authoritative."""
        worker = MetricsRegistry()
        worker.counter("c_total", host="stale").inc(2)
        registry.merge_dict(worker.as_dict(),
                            extra_labels={"host": "fresh:9"})
        assert registry.counter("c_total", host="fresh:9").value == 2

    def test_host_label_shape(self):
        from repro.observe import host_label

        label = host_label()
        name, _, pid = label.rpartition(":")
        assert name and pid.isdigit()

    def test_merge_ignores_incompatible_histogram_bounds(self, registry):
        registry.histogram("h", buckets=(1, 2)).observe(1)
        before = registry.histogram("h", buckets=(1, 2)).count
        registry.merge_dict({"histograms": [
            {"name": "h", "labels": {}, "bounds": [9], "buckets": [0, 1],
             "sum": 1.0, "count": 1},
        ]})
        assert registry.histogram("h", buckets=(1, 2)).count == before

    def test_prometheus_exposition_shape(self, registry):
        registry.counter("c_total", kind="x").inc(3)
        registry.gauge("g").set(2)        # noqa: a gauge line too
        histogram = registry.histogram("h", buckets=(1, 2))
        histogram.observe(1)
        histogram.observe(10)
        text = registry.to_prometheus()
        assert "# TYPE c_total counter" in text
        assert 'c_total{kind="x"} 3' in text
        assert "# TYPE h histogram" in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 1' in text      # cumulative
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_count 2" in text

    def test_null_registry_records_nothing(self):
        null = NullRegistry()
        null.counter("c_total").inc(10)
        null.histogram("h").observe(1.0)
        null.gauge("g").set(5)
        assert null.as_dict() == {"counters": [], "gauges": [],
                                  "histograms": []}
        assert null.to_prometheus() == ""

    def test_disabled_context_swaps_registry(self, registry):
        with disabled():
            get_registry().counter("hidden_total").inc()
            assert isinstance(get_registry(), NullRegistry)
        assert get_registry() is registry
        assert registry.counter("hidden_total").value == 0


class TestEventsAndTimers:
    def test_events_off_by_default(self, registry):
        assert not events_enabled()
        emit("noop", a=1)  # must not raise

    def test_events_stream_jsonl(self, registry):
        stream = io.StringIO()
        configure_events(stream)
        try:
            emit("thing-happened", count=3, what="x")
            record = json.loads(stream.getvalue())
            assert record["event"] == "thing-happened"
            assert record["count"] == 3
            assert "ts" in record
        finally:
            configure_events(None)
        assert not events_enabled()

    def test_phase_timer_records_histogram(self, registry):
        with phase_timer("unit-test-phase"):
            pass
        found = [h for h in registry.as_dict()["histograms"]
                 if h["name"] == "talft_phase_seconds"
                 and h["labels"].get("phase") == "unit-test-phase"]
        assert len(found) == 1 and found[0]["count"] == 1

    def test_phase_timer_records_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with phase_timer("failing-phase"):
                raise RuntimeError("boom")
        found = [h for h in registry.as_dict()["histograms"]
                 if h["labels"].get("phase") == "failing-phase"]
        assert found and found[0]["count"] == 1


class TestProgressReporter:
    def test_heartbeat_format(self, registry):
        stream = io.StringIO()
        reporter = ProgressReporter(4, label="campaign", stream=stream,
                                    min_interval=0.0)
        reporter.advance()
        reporter.finish()
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert lines[0].startswith("campaign: 1/4 steps (25.0%)")
        assert "eta" in lines[0]
        assert lines[-1].startswith("campaign: 1/4 steps")

    def test_rate_limited_but_final_line_always_emitted(self, registry):
        stream = io.StringIO()
        reporter = ProgressReporter(1000, stream=stream, min_interval=3600)
        for _ in range(50):
            reporter.advance()
        # The first heartbeat fires immediately; every later one falls
        # under the rate limit...
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert len(lines) == 1 and lines[0].startswith("progress: 1/1000")
        # ...but finish() always emits the closing summary.
        reporter.finish()
        assert "50/1000" in stream.getvalue()

    def test_closed_stream_never_raises(self, registry):
        stream = io.StringIO()
        reporter = ProgressReporter(2, stream=stream, min_interval=0.0)
        stream.close()
        reporter.advance()
        reporter.finish()  # swallowed, campaign must survive


class TestSnapshotAndMetricsFile:
    def test_snapshot_unifies_scattered_stats(self, registry):
        snap = snapshot()
        assert set(snap) == {"metrics", "caches"}
        assert set(snap["caches"]) == {"exec", "normalization",
                                       "intern_tables"}
        assert "program_hits" in snap["caches"]["exec"]

    def test_write_metrics_emits_json_and_prometheus(self, registry,
                                                     tmp_path):
        registry.counter("c_total").inc(3)
        path = str(tmp_path / "metrics.json")
        json_path, prom_path = write_metrics(path, extra={"command": "test"})
        document = json.loads(open(json_path).read())
        assert document["command"] == "test"
        names = [c["name"] for c in document["metrics"]["counters"]]
        assert "c_total" in names
        assert "c_total 3" in open(prom_path).read()


class TestCampaignInstrumentation:
    CONFIG = CampaignConfig(max_injection_steps=6, max_values_per_site=2,
                            max_sites_per_step=4, seed=11)

    def test_campaign_populates_counters(self, registry):
        report = run_campaign(countdown_loop_program(2), self.CONFIG)
        assert registry.counter("campaign_injections_total").value == \
            report.injections
        assert registry.counter("campaign_results_total",
                                result="masked").value == report.masked
        assert registry.counter("campaign_steps_total").value == 6
        hist = registry.histogram("campaign_detection_latency_steps",
                                  buckets=STEPS_BUCKETS)
        assert hist.count == report.detected

    def test_report_is_bit_identical_with_metrics_disabled(self, registry):
        program = paper_store_program()
        instrumented = run_campaign(program, self.CONFIG)
        with disabled():
            plain = run_campaign(program, self.CONFIG)
        assert report_fingerprint(instrumented) == report_fingerprint(plain)
        assert instrumented.latency_buckets == plain.latency_buckets

    def test_latency_buckets_power_of_two_and_complete(self, registry):
        report = run_campaign(countdown_loop_program(2), self.CONFIG)
        assert sum(report.latency_buckets.values()) == report.detected
        for bucket in report.latency_buckets:
            assert bucket & (bucket - 1) == 0  # power of two

    def test_latency_buckets_identical_across_jobs(self, registry):
        program = countdown_loop_program(2)
        serial = run_campaign(program, self.CONFIG, jobs=1)
        parallel = run_campaign(program, self.CONFIG, jobs=2)
        assert report_fingerprint(serial) == report_fingerprint(parallel)
        assert serial.latency_buckets == parallel.latency_buckets

    def test_progress_goes_to_stderr_only(self, registry, capsys):
        run_campaign(paper_store_program(), self.CONFIG, progress=True)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "campaign:" in captured.err and "eta" in captured.err

    def test_worker_telemetry_folds_into_parent(self, registry):
        run_campaign(countdown_loop_program(2), self.CONFIG, jobs=2)
        assert registry.counter("campaign_worker_steps_total").value == 6
        assert registry.counter("campaign_worker_injections_total").value > 0
        assert registry.histogram("campaign_worker_chunk_seconds").count > 0

    def test_journal_metrics_recorded(self, registry, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        run_campaign(paper_store_program(), self.CONFIG, journal_path=path)
        assert registry.counter("journal_appends_total").value == 6
        assert registry.counter("journal_fsyncs_total").value >= 1
        assert registry.histogram("journal_fsync_seconds").count >= 1

    def test_typecheck_metrics_recorded(self, registry):
        paper_store_program().check()
        assert registry.counter("typecheck_blocks_total").value == 1
        assert registry.counter("typecheck_instructions_total").value == 7
        found = [h for h in registry.as_dict()["histograms"]
                 if h["labels"].get("phase") == "typecheck"]
        assert found and found[0]["count"] == 1


class TestCliObservability:
    STORE = "examples/programs/store.tal"

    def test_check_writes_metrics_files(self, registry, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "m.json")
        assert main(["check", self.STORE, "--metrics", path]) == 0
        document = json.loads(open(path).read())
        names = [c["name"] for c in document["metrics"]["counters"]]
        assert "typecheck_blocks_total" in names
        assert document["command"] == "check"
        assert "typecheck_blocks_total" in open(path + ".prom").read()

    def test_campaign_events_stream(self, registry, tmp_path, capsys):
        from repro.cli import main

        events_path = str(tmp_path / "events.jsonl")
        program = str(tmp_path / "p.mwl")
        with open("examples/programs/dotproduct.mwl") as src:
            open(program, "w").write(src.read())
        assert main(["campaign", program, "--samples", "4",
                     "--events", events_path]) == 0
        kinds = [json.loads(line)["event"]
                 for line in open(events_path) if line.strip()]
        assert "campaign-start" in kinds
        assert "campaign-end" in kinds
        assert "phase" in kinds
