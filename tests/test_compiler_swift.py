"""Tests for the SWIFT-style software-only backend."""

import pytest

from repro.compiler import compile_source
from repro.compiler.swift import ERROR_LABEL, ERROR_PORT
from repro.core import Machine, Outcome, RegZap, run_to_completion
from repro.injection import CampaignConfig, FaultResult, classify, run_campaign
from repro.lang import check_source, interpret, parse_source
from repro.types import TypeCheckError

SOURCE = """
array out[4];
var i = 0;
while (i < 3) { out[i] = i * 10 + 7; i = i + 1; }
"""


@pytest.fixture(scope="module")
def software():
    return compile_source(SOURCE, mode="swift")


class TestSwiftBackend:
    def test_differential_against_interpreter(self, software):
        ast = parse_source(SOURCE)
        check_source(ast)
        expected = [(a, i, v) for a, i, v in interpret(ast).writes]
        trace = run_to_completion(software.program.boot())
        assert trace.outcome is Outcome.HALTED
        observed = [
            software.lowered.layout.describe(address) + (value,)
            for address, value in trace.outputs
        ]
        assert observed == expected

    def test_fault_free_run_never_touches_error_port(self, software):
        trace = run_to_completion(software.program.boot())
        assert all(address != ERROR_PORT for address, _ in trace.outputs)

    def test_error_handler_block_exists(self, software):
        assert ERROR_LABEL in software.block_order
        assert software.program.initial_memory[ERROR_PORT] == 0

    def test_rejected_by_type_checker(self, software):
        with pytest.raises(TypeCheckError):
            software.program.check()

    def test_checks_detect_a_divergence(self, software):
        # Corrupt one copy of a value early: the software compare catches
        # it and announces on the error port.
        machine = Machine(software.program.boot())
        trace = machine.run(fault=RegZap("r1", 424242), fault_at_step=4,
                            max_steps=100_000)
        assert trace.outcome is Outcome.HALTED
        assert trace.outputs and trace.outputs[-1][0] == ERROR_PORT

    def test_code_bigger_than_hybrid(self, software):
        hybrid = compile_source(SOURCE, mode="ft")
        assert software.program.size > hybrid.program.size


class TestErrorPortClassification:
    def test_classify_detected_via_error_port(self):
        from repro.core import Trace

        reference = Trace(Outcome.HALTED, [(1, 1), (2, 2)], 10)
        announced = Trace(Outcome.HALTED, [(1, 1), (ERROR_PORT, 1)], 9)
        assert classify(announced, reference, ERROR_PORT) \
            is FaultResult.DETECTED
        # Without the convention it would look like silent corruption.
        assert classify(announced, reference) \
            is FaultResult.SILENT_CORRUPTION

    def test_classify_deviation_before_announcement(self):
        from repro.core import Trace

        reference = Trace(Outcome.HALTED, [(1, 1), (2, 2)], 10)
        late = Trace(Outcome.HALTED, [(9, 9), (ERROR_PORT, 1)], 9)
        assert classify(late, reference, ERROR_PORT) \
            is FaultResult.SILENT_CORRUPTION

    def test_masked_runs_unaffected_by_convention(self):
        from repro.core import Trace

        reference = Trace(Outcome.HALTED, [(1, 1)], 10)
        masked = Trace(Outcome.HALTED, [(1, 1)], 12)
        assert classify(masked, reference, ERROR_PORT) is FaultResult.MASKED


class TestToctouWindow:
    def test_software_only_leaks_silent_corruption(self, software):
        # The paper's core argument: a whole-campaign sweep finds faults
        # in the check-to-use window that corrupt silently.
        config = CampaignConfig(max_injection_steps=60,
                                max_values_per_site=3,
                                max_sites_per_step=12, seed=5,
                                error_port=ERROR_PORT)
        report = run_campaign(software.program, config)
        assert report.silent > 0, report.summary()
        # Most faults ARE caught -- software duplication works, it is
        # just not airtight.
        assert report.coverage > 0.95

    def test_hybrid_build_of_same_source_is_airtight(self):
        hybrid = compile_source(SOURCE, mode="ft")
        config = CampaignConfig(max_injection_steps=60,
                                max_values_per_site=3,
                                max_sites_per_step=12, seed=5)
        report = run_campaign(hybrid.program, config)
        assert report.silent == 0
        assert report.coverage == 1.0
