"""Tests for the batch-vectorized campaign backend.

The vector backend's contract is exactness: ``backend="vector"`` must
produce reports bit-identical to the interpreter and compiled engines --
same classifications, same per-record outputs and latencies, same
``latency_buckets`` -- no matter which control path a faulted lane takes.
These tests force lanes down every divergence class (corrupted branch
targets, deviating stores, early halts, oversized values, batch cutoff)
and compare the batch's settled outcomes element-for-element against
per-lane compiled runs, then check the campaign-level plumbing: the
backend registry, process-pool composition, journal interoperability,
the numpy-less downgrade chain, and the PR-5 metrics counters.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.compiler import compile_source
from repro.compiler.swift import ERROR_PORT
from repro.core import Machine, green
from repro.core.faults import (
    QueueZapAddress,
    QueueZapValue,
    RegZap,
    apply_fault,
)
from repro.core.registers import PC_B, PC_G
from repro.exec import BACKENDS, MACHINE_BACKENDS, run_compiled
from repro.exec.vector import VMAX, schedule_for, vector_available
from repro.injection import CampaignConfig, run_campaign
from repro.injection.batch import run_step_batch
from repro.injection.campaign import _reference_run, classify_tail
from repro.injection.chaos import report_fingerprint
from repro.observe import MetricsRegistry, set_registry
from repro.workloads import ALL_KERNELS, compile_kernel
from tests.helpers import countdown_loop_program, paper_store_program

SOURCE = """
array out[4];
var i = 0;
while (i < 3) { out[i] = i * 10 + 7; i = i + 1; }
"""

#: Tiny-but-representative campaign for cross-backend fingerprinting.
_TINY = dict(max_injection_steps=3, max_sites_per_step=4,
             max_values_per_site=1, seed=11, max_steps=500_000)


def _campaign(backend, **overrides):
    params = dict(_TINY)
    params.update(overrides)
    return CampaignConfig(backend=backend, **params)


class TestBackendRegistry:
    def test_registry_lists_all_engines(self):
        assert set(MACHINE_BACKENDS) <= set(BACKENDS)
        assert "vector" in BACKENDS
        assert "vector" not in MACHINE_BACKENDS

    def test_config_accepts_registered_backends(self):
        for backend in BACKENDS:
            assert CampaignConfig(backend=backend).backend == backend

    def test_config_rejects_unregistered_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            CampaignConfig(backend="simd")

    def test_run_campaign_rejects_unregistered_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_campaign(paper_store_program(), CampaignConfig(),
                         backend="simd")

    def test_machine_rejects_campaign_only_backend(self):
        # The vector engine exists only at campaign granularity.
        with pytest.raises(ValueError, match="unknown backend"):
            Machine(paper_store_program().boot(), backend="vector")


class TestKernelParity:
    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_vector_matches_step_on_kernel(self, kernel):
        program = compile_kernel(kernel, "ft").program
        vector = run_campaign(program, _campaign("vector"))
        step = run_campaign(program, _campaign("step"))
        assert report_fingerprint(vector) == report_fingerprint(step)

    def test_deep_sweep_matches_including_latency_buckets(self):
        # No site cap: wide batches, every divergence class populated.
        program = compile_kernel("vpr", "ft").program
        config = dict(max_injection_steps=4, max_sites_per_step=None,
                      max_values_per_site=2, seed=3)
        vector = run_campaign(program, CampaignConfig(backend="vector",
                                                      **config))
        compiled = run_campaign(program, CampaignConfig(backend="compiled",
                                                        **config))
        assert report_fingerprint(vector) == report_fingerprint(compiled)
        assert vector.latency_buckets == compiled.latency_buckets
        assert vector.latency_buckets  # the sweep must land some latencies


class TestForcedDivergence:
    """Element-wise parity of one batch against per-lane compiled runs.

    ``run_step_batch`` is fed hand-built fault lists that force lanes onto
    faulted control paths: branch/jump targets redirected to other code
    addresses (the loop head and exit of ``countdown_loop_program``),
    store addresses and queued values corrupted, registers zapped just
    before ``halt``, plus oversized values the arrays cannot carry (which
    must take the scalar screen, not crash).  Every outcome tuple --
    fault, classification, output tail, latency -- must equal the one a
    per-lane compiled run produces.
    """

    def _scalar_outcomes(self, reference, config, base, faults, budget,
                         produced):
        outcomes = []
        for fault in faults:
            faulty = base.clone()
            apply_fault(faulty, fault)
            if reference.compiled is not None:
                trace = run_compiled(faulty, reference.compiled,
                                     max_steps=budget)
            else:
                trace = Machine(faulty, oob_policy=config.oob_policy,
                                backend="step").run(max_steps=budget)
            result = classify_tail(trace, reference.trace, produced,
                                   config.error_port)
            outcomes.append((fault, result, tuple(trace.outputs),
                             trace.steps))
        return outcomes

    def _forced_faults(self, base):
        # Branch/jump targets (6 = loop head, 20 = exit), store addresses
        # (256 is the observable cell), small arithmetic corruptions, a
        # value at the vector range and one beyond it (scalar screen).
        values = (0, 1, 2, 6, 20, 255, 256, -1, VMAX, VMAX + 1)
        faults = [RegZap(reg, value)
                  for reg in base.regs._regs
                  for value in values]
        for index in range(len(base.queue)):
            faults.append(QueueZapAddress(index, 6))
            faults.append(QueueZapValue(index, 257))
        return faults

    @pytest.mark.parametrize("program_builder,name", [
        (lambda: countdown_loop_program(4), "countdown"),
        (paper_store_program, "paper-store"),
    ])
    def test_batch_equals_per_lane_compiled_runs(self, program_builder,
                                                 name):
        program = program_builder()
        config = CampaignConfig(backend="vector")
        reference = _reference_run(program, config)
        budget = reference.trace.steps + config.step_slack
        for step_index in range(reference.num_steps):
            base = reference.state_at(step_index)
            faults = self._forced_faults(base)
            produced = reference.outputs_before[step_index]
            batch = run_step_batch(program, config, reference, budget,
                                   step_index, base, faults)
            assert batch is not None, \
                f"{name}: step {step_index} refused vectorization"
            scalar = self._scalar_outcomes(reference, config, base, faults,
                                           budget, produced)
            assert batch == scalar, f"{name}: step {step_index} diverged"

    def test_unschedulable_step_declines(self):
        # A base state whose registers disagree with the schedule must be
        # declined (None), never guessed at.
        program = countdown_loop_program(3)
        config = CampaignConfig(backend="vector")
        reference = _reference_run(program, config)
        budget = reference.trace.steps + config.step_slack
        base = reference.state_at(0)
        base.regs.set(PC_G, green(999))
        base.regs.set(PC_B, green(999))
        assert run_step_batch(program, config, reference, budget, 0, base,
                              [RegZap("r1", 1)]) is None

    def test_schedule_is_cached(self):
        program = countdown_loop_program(3)
        boot = program.boot()
        config = CampaignConfig(backend="vector")
        reference = _reference_run(program, config)
        first = schedule_for(boot, config.oob_policy, reference.trace.steps)
        again = schedule_for(program.boot(), config.oob_policy,
                             reference.trace.steps)
        assert first is not None
        assert again is first  # same object via the program cache


class TestCampaignComposition:
    def test_jobs_pool_parity(self):
        program = countdown_loop_program(5)
        serial = run_campaign(program, _campaign("step"))
        pooled = run_campaign(program, _campaign("vector"), jobs=2)
        assert report_fingerprint(pooled) == report_fingerprint(serial)

    def test_journal_interoperates_across_backends(self, tmp_path):
        # config_digest excludes the backend: a journal written by the
        # vector engine must resume under the interpreter, bit-identical.
        program = countdown_loop_program(4)
        path = str(tmp_path / "campaign.journal")
        first = run_campaign(program, _campaign("vector"),
                             journal_path=path)
        resumed = run_campaign(program, _campaign("step"),
                               journal_path=path, resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(first)
        assert resumed.resilience.resumed_steps > 0
        assert resumed.resilience.journaled_steps == 0

    def test_vector_downgrades_without_numpy(self, monkeypatch):
        # With numpy "missing", backend="vector" must silently resolve to
        # the compiled engine and still produce the identical report.
        program = countdown_loop_program(3)
        expected = run_campaign(program, _campaign("compiled"))
        monkeypatch.setattr("repro.injection.campaign.vector_available",
                            lambda: False)
        report = run_campaign(program, _campaign("vector"))
        assert report_fingerprint(report) == report_fingerprint(expected)

    def test_unbatchable_step_falls_back_scalar(self, monkeypatch):
        # run_step_batch returning None mid-campaign (here: forced) must
        # fall through to the scalar loop without changing the report.
        program = countdown_loop_program(3)
        expected = run_campaign(program, _campaign("compiled"))
        monkeypatch.setattr("repro.injection.batch.vector_available",
                            lambda: False)
        report = run_campaign(program, _campaign("vector"))
        assert report_fingerprint(report) == report_fingerprint(expected)


class TestModesAndPorts:
    def test_baseline_mode_parity(self):
        # The plain ISA: silent corruptions and timeouts, no detection --
        # exercises the fallback classification paths hard.
        program = compile_source(SOURCE, mode="baseline").program
        config = dict(max_injection_steps=6, max_sites_per_step=None,
                      max_values_per_site=2, seed=5)
        vector = run_campaign(program, CampaignConfig(backend="vector",
                                                      **config))
        step = run_campaign(program, CampaignConfig(backend="step",
                                                    **config))
        assert report_fingerprint(vector) == report_fingerprint(step)

    def test_swift_error_port_parity(self):
        # An error port reclassifies HALTED runs, so the vector engine's
        # MASKED fast path must defer to classify_tail when one is set.
        program = compile_source(SOURCE, mode="swift").program
        config = dict(max_injection_steps=6, max_sites_per_step=None,
                      max_values_per_site=2, seed=5,
                      error_port=ERROR_PORT)
        vector = run_campaign(program, CampaignConfig(backend="vector",
                                                      **config))
        step = run_campaign(program, CampaignConfig(backend="step",
                                                    **config))
        assert report_fingerprint(vector) == report_fingerprint(step)


class TestMetrics:
    def test_vector_counters_are_recorded(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            # Pruning off: this test is about the lane-batch counters,
            # and pruning can classify every variant before a batch runs.
            program = countdown_loop_program(4)
            run_campaign(program, _campaign("vector", prune=False))
            assert fresh.counter("vector_batches_total").value > 0
            assert fresh.counter("vector_lanes_total").value > 0
            assert fresh.counter("vector_lane_steps_total").value > 0
        finally:
            set_registry(previous)
