"""Tests for the textual assembler: lexer, parser, resolution, round trips."""

import pytest

from repro.asm import format_program, parse_program, tokenize
from repro.core import (
    ArithRRI,
    AsmError,
    Color,
    Halt,
    Load,
    Mov,
    Outcome,
    Store,
    blue,
    green,
    run_to_completion,
)
from repro.types import CondType, IntType, RefType, RegType, TypeCheckError
from repro.verify import check_fault_tolerance, check_type_safety

STORE_EXAMPLE = """
; The Section 2.2 store sequence.
.gprs 8
.data
  word 256 = 0

.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 5
  mov r4, B 256
  stB r4, r3
  halt
"""

LOOP_EXAMPLE = """
.gprs 8
.data
  word 256 = 0

.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 3
  mov r2, B 3
  mov r4, B 0
  mov r6, B 0
  mov r8, B 0

loop:
  .pre [ml: mem, n: int, l3: int, l4: int, l5: int, l6: int, l7: int, l8: int] {
      r1: (G, int, n), r2: (B, int, n),
      r3: (G, int, l3), r4: (B, int, l4),
      r5: (G, int, l5), r6: (B, int, l6),
      r7: (G, int, l7), r8: (B, int, l8)
  } queue [] mem ml
  mov r3, G 256
  mov r4, B 256
  stG r3, r1
  stB r4, r2
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r5, G @done
  mov r6, B @done
  bzG r1, r5
  bzB r2, r6
  mov r7, G @loop
  mov r8, B @loop
  jmpG r7
  jmpB r8

done:
  .pre [md: mem, d1: int, d2: int, d3: int, d4: int,
        d5: int, d6: int, d7: int, d8: int] {
      r1: (G, int, d1), r2: (B, int, d2),
      r3: (G, int, d3), r4: (B, int, d4),
      r5: (G, int, d5), r6: (B, int, d6),
      r7: (G, int, d7), r8: (B, int, d8)
  } queue [] mem md
  halt
"""


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("mov r1, G 5 ; comment\nhalt")
        kinds = [(t.kind, t.text) for t in tokens]
        assert ("IDENT", "mov") in kinds
        assert ("INT", "5") in kinds
        assert ("NEWLINE", "\n") in kinds
        assert kinds[-1] == ("EOF", "")

    def test_comments_stripped(self):
        tokens = tokenize("halt ; this is ignored")
        texts = [t.text for t in tokens if t.kind == "IDENT"]
        assert texts == ["halt"]

    def test_negative_integers(self):
        tokens = tokenize("mov r1, G -3")
        assert ("INT", "-3") in [(t.kind, t.text) for t in tokens]

    def test_punctuation_arrow(self):
        tokens = tokenize("x = 0 => (G, int, 1)")
        assert ("PUNCT", "=>") in [(t.kind, t.text) for t in tokens]

    def test_bad_character_raises(self):
        with pytest.raises(AsmError):
            tokenize("mov r1 ` 5")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        idents = [t for t in tokens if t.kind == "IDENT"]
        assert [t.line for t in idents] == [1, 2, 3]


class TestParsing:
    def test_store_example_structure(self):
        program = parse_program(STORE_EXAMPLE)
        assert program.size == 7
        assert program.entry == 1
        assert program.code[1] == Mov("r1", green(5))
        assert program.code[3] == Store(Color.GREEN, "r2", "r1")
        assert program.code[6] == Store(Color.BLUE, "r4", "r3")
        assert program.code[7] == Halt()
        assert program.initial_memory == {256: 0}
        assert program.data_psi[256] == RefType(IntType())

    def test_store_example_checks_and_runs(self):
        program = parse_program(STORE_EXAMPLE)
        program.check()
        trace = run_to_completion(program.boot())
        assert trace.outcome is Outcome.HALTED
        assert trace.outputs == [(256, 5)]

    def test_loop_example_checks_and_runs(self):
        program = parse_program(LOOP_EXAMPLE)
        program.check()
        trace = run_to_completion(program.boot())
        assert trace.outputs == [(256, 3), (256, 2), (256, 1)]

    def test_loop_example_is_fault_tolerant(self):
        program = parse_program(LOOP_EXAMPLE)
        run = check_type_safety(program)
        assert run.status.value == "halted"

    def test_label_immediates_resolve(self):
        program = parse_program(LOOP_EXAMPLE)
        loop_address = program.address_of("loop")
        done_address = program.address_of("done")
        # mov r5, G @done
        offset = loop_address + 6
        assert program.code[offset] == Mov("r5", green(done_address))

    def test_imm_arith_forms(self):
        source = """
.gprs 4
.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 10
  add r2, r1, G 5
  sub r3, r2, G 1
  halt
"""
        program = parse_program(source)
        assert program.code[2] == ArithRRI("add", "r2", "r1", green(5))
        program.check()

    def test_plain_baseline_instructions_parse(self):
        source = """
.gprs 4
.data
  word 100 = 7
.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 100
  ld r2, r1
  st r1, r2
  halt
"""
        program = parse_program(source)
        trace = run_to_completion(program.boot())
        assert trace.outputs == [(100, 7)]
        with pytest.raises(TypeCheckError):
            program.check()

    def test_conditional_type_syntax(self):
        source = """
.gprs 2
.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 1
  halt
second:
  .pre [m2: mem, z: int] {
      d: z = 0 => (G, code @main, 1), rest: zero
  } mem m2
  halt
"""
        program = parse_program(source)
        second = program.address_of("second")
        dest = program.label_types[second].context.gamma.get("d")
        assert isinstance(dest, CondType)

    def test_code_pointer_in_data(self):
        source = """
.gprs 4
.data
  word 100 = @main : code @main
.code
main:
  .pre [m: mem] { rest: zero } mem m
  halt
"""
        program = parse_program(source)
        from repro.types import CodeType

        assert isinstance(program.data_psi[100].pointee, CodeType)
        assert program.initial_memory[100] == 1

    def test_recursive_code_types_rejected(self):
        source = """
.gprs 2
.code
a:
  .pre [m: mem, x: int] { r1: (G, code @b, x), rest: zero } mem m
  halt
b:
  .pre [m2: mem, y: int] { r1: (G, code @a, y), rest: zero } mem m2
  halt
"""
        with pytest.raises(AsmError):
            parse_program(source)

    def test_undefined_label_rejected(self):
        source = """
.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G @nowhere
  halt
"""
        with pytest.raises(AsmError):
            parse_program(source)

    def test_duplicate_label_rejected(self):
        source = """
.code
main:
  .pre [m: mem] { rest: zero } mem m
  halt
main:
  .pre [m: mem] { rest: zero } mem m
  halt
"""
        with pytest.raises(AsmError):
            parse_program(source)

    def test_missing_register_type_without_rest(self):
        source = """
.gprs 4
.code
main:
  .pre [m: mem] { r1: (G, int, 0) } mem m
  halt
"""
        with pytest.raises(AsmError):
            parse_program(source)

    def test_entry_directive(self):
        source = """
.entry second
.gprs 2
.code
first:
  .pre [m: mem] { rest: zero } mem m
  halt
second:
  .pre [m2: mem] { rest: zero } mem m2
  halt
"""
        program = parse_program(source)
        assert program.entry == program.address_of("second")

    def test_empty_program_rejected(self):
        with pytest.raises(AsmError):
            parse_program(".code\n")


class TestHints:
    def test_explicit_jump_hint_parses_and_checks(self):
        source = """
.gprs 4
.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G @main2
  mov r2, B @main2
  jmpG r1
  jmpB r2 with [m2 = m, a = @main2, b = @main2]
main2:
  .pre [m2: mem, a: int, b: int] {
      r1: (G, int, a), r2: (B, int, b), rest: zero
  } mem m2
  halt
"""
        program = parse_program(source)
        program.check()
        assert program.hints  # the hint survived assembly


class TestPrinter:
    def test_round_trip_listing_mentions_everything(self):
        program = parse_program(LOOP_EXAMPLE)
        listing = format_program(program, preconditions=True)
        assert "loop:" in listing
        assert "done:" in listing
        assert "stG r3, r1" in listing
        assert ".data" in listing
        assert "word 256 = 0" in listing

    def test_listing_of_sequential_addresses(self):
        program = parse_program(STORE_EXAMPLE)
        listing = format_program(program)
        assert "   1: mov r1, G5" in listing
        assert "   7: halt" in listing
