"""Tests for the timing simulator: scheduling, issue model, runner."""

import pytest

from repro.core import (
    ArithRRI,
    ArithRRR,
    Bz,
    Color,
    Halt,
    Jmp,
    Load,
    Mov,
    Store,
    blue,
    green,
)
from repro.simulator import (
    DEFAULT_CONFIG,
    RELAXED_CONFIG,
    MachineConfig,
    dependence_edges,
    record_block_path,
    schedule_block,
    schedule_prefix,
    simulate,
    time_stream,
)
from repro.simulator.deps import kind_of, reads_of, writes_of
from repro.compiler import compile_source

G, B = Color.GREEN, Color.BLUE


class TestDeps:
    def test_kinds(self):
        assert kind_of(ArithRRR("add", "r1", "r2", "r3")) == "alu"
        assert kind_of(ArithRRI("mul", "r1", "r2", green(3))) == "mul"
        assert kind_of(Load(G, "r1", "r2")) == "load"
        assert kind_of(Store(B, "r1", "r2")) == "store"
        assert kind_of(Jmp(B, "r1")) == "branch"
        assert kind_of(Halt()) == "halt"

    def test_blue_jump_reads_dest(self):
        assert "d" in reads_of(Jmp(B, "r1"))
        assert "d" not in reads_of(Jmp(G, "r1"))

    def test_green_control_writes_dest(self):
        assert "d" in writes_of(Jmp(G, "r1"))
        assert "d" in writes_of(Bz(G, "r1", "r2"))


class TestScheduling:
    def _store_pair_block(self):
        return [
            Mov("r1", green(5)),
            Mov("r2", green(256)),
            Store(G, "r2", "r1"),
            Mov("r3", blue(5)),
            Mov("r4", blue(256)),
            Store(B, "r4", "r3"),
            Halt(),
        ]

    def test_schedule_is_a_permutation(self):
        block = self._store_pair_block()
        order = schedule_block(block, DEFAULT_CONFIG)
        assert sorted(order) == list(range(len(block)))

    def test_constrained_keeps_green_store_first(self):
        block = self._store_pair_block()
        order = schedule_block(block, DEFAULT_CONFIG)
        assert order.index(2) < order.index(5)  # stG before stB

    def test_register_dependences_respected(self):
        block = self._store_pair_block()
        for config in (DEFAULT_CONFIG, RELAXED_CONFIG):
            order = schedule_block(block, config)
            # each store after the movs feeding it
            assert order.index(0) < order.index(2)
            assert order.index(1) < order.index(2)
            assert order.index(3) < order.index(5)
            assert order.index(4) < order.index(5)

    def test_relaxed_drops_cross_color_store_edge(self):
        block = self._store_pair_block()
        constrained = dependence_edges(block, relaxed=False)
        relaxed = dependence_edges(block, relaxed=True)
        assert 2 in constrained[5]
        assert 2 not in relaxed[5]

    def test_halt_is_barrier(self):
        block = self._store_pair_block()
        order = schedule_block(block, DEFAULT_CONFIG)
        assert order[-1] == len(block) - 1

    def test_commit_branch_is_barrier(self):
        block = [
            Mov("r1", green(9)),
            Jmp(G, "r1"),
            Mov("r2", blue(9)),
            Jmp(B, "r2"),
        ]
        order = schedule_block(block, DEFAULT_CONFIG)
        assert order[-1] == 3

    def test_schedule_prefix(self):
        order = [2, 0, 1, 3]
        assert schedule_prefix(order, 2) == [0, 1]
        assert schedule_prefix(order, 4) == order


class TestIssueModel:
    def test_independent_ops_issue_together(self):
        stream = [(Mov(f"r{i}", green(i)), False) for i in range(1, 7)]
        result = time_stream(stream, MachineConfig(issue_width=6))
        assert result.cycles <= 2  # one issue cycle + drain

    def test_issue_width_limits(self):
        stream = [(Mov(f"r{i}", green(i)), False) for i in range(1, 7)]
        narrow = time_stream(stream, MachineConfig(issue_width=1))
        wide = time_stream(stream, MachineConfig(issue_width=6))
        assert narrow.cycles > wide.cycles

    def test_raw_dependence_stalls(self):
        dependent = [
            (ArithRRI("mul", "r2", "r1", green(3)), False),
            (ArithRRI("add", "r3", "r2", green(1)), False),
        ]
        result = time_stream(dependent, DEFAULT_CONFIG)
        # mul latency 3: the add cannot issue before cycle 3.
        assert result.cycles >= 4

    def test_load_port_pressure(self):
        loads = [(Load(G, f"r{i}", "r10"), False) for i in range(1, 7)]
        two_ports = time_stream(loads, MachineConfig(load_ports=2))
        six_ports = time_stream(loads, MachineConfig(load_ports=6))
        assert two_ports.cycles > six_ports.cycles

    def test_branch_penalty_applies_on_taken(self):
        block = [(Mov("r1", green(5)), False), (Jmp(B, "r1"), True),
                 (Mov("r2", green(6)), False)]
        with_penalty = time_stream(block, MachineConfig(branch_penalty=10))
        without = time_stream(block, MachineConfig(branch_penalty=0))
        assert with_penalty.cycles >= without.cycles + 9

    def test_queue_forward_latency_delays_blue_store(self):
        pair = [
            (Mov("r1", green(5)), False),
            (Mov("r2", green(256)), False),
            (Store(G, "r2", "r1"), False),
            (Mov("r3", blue(5)), False),
            (Mov("r4", blue(256)), False),
            (Store(B, "r4", "r3"), False),
        ]
        slow = time_stream(pair, MachineConfig(queue_forward_latency=8))
        fast = time_stream(pair, MachineConfig(queue_forward_latency=0))
        assert slow.cycles > fast.cycles


class TestRunner:
    SRC = """
    array out[8];
    var i = 0;
    while (i < 5) { out[i] = i * 3; i = i + 1; }
    """

    def test_block_path_structure(self):
        compiled = compile_source(self.SRC, mode="ft")
        path = record_block_path(compiled)
        # Loop head executes 6 times (5 taken + final exit).
        labels = [instance.label for instance in path]
        assert labels[0] == compiled.lowered.cfg.entry
        head_count = sum(1 for name in labels if name.startswith("head"))
        assert head_count == 6

    def test_instances_cover_executed_instructions(self):
        compiled = compile_source(self.SRC, mode="ft")
        path = record_block_path(compiled)
        for instance in path:
            assert 0 < instance.executed <= \
                len(compiled.block_bodies[instance.label])

    def test_ft_slower_than_baseline(self):
        baseline = simulate(compile_source(self.SRC, mode="baseline"))
        protected = simulate(compile_source(self.SRC, mode="ft"))
        assert protected.cycles > baseline.cycles
        # But far less than 2x: duplication is hidden by the wide machine.
        assert protected.cycles < 2 * baseline.cycles

    def test_relaxed_not_slower_than_constrained(self):
        compiled = compile_source(self.SRC, mode="ft")
        constrained = simulate(compiled, DEFAULT_CONFIG)
        relaxed = simulate(compiled, RELAXED_CONFIG)
        assert relaxed.cycles <= constrained.cycles

    def test_narrower_machine_is_slower(self):
        compiled = compile_source(self.SRC, mode="ft")
        wide = simulate(compiled, MachineConfig(issue_width=6))
        narrow = simulate(compiled, MachineConfig(issue_width=1))
        assert narrow.cycles > wide.cycles

    def test_path_reuse_gives_same_cycles(self):
        compiled = compile_source(self.SRC, mode="ft")
        path = record_block_path(compiled)
        a = simulate(compiled, DEFAULT_CONFIG, path=path)
        b = simulate(compiled, DEFAULT_CONFIG)
        assert a.cycles == b.cycles


class TestStallAccounting:
    def test_stall_causes_recorded(self):
        dependent = [
            (ArithRRI("mul", "r2", "r1", green(3)), False),
            (ArithRRI("add", "r3", "r2", green(1)), False),
        ]
        result = time_stream(dependent, DEFAULT_CONFIG)
        assert result.stalls.get("operand", 0) >= 2

    def test_port_stalls_recorded(self):
        loads = [(Load(G, f"r{i}", "r10"), False) for i in range(1, 7)]
        result = time_stream(loads, MachineConfig(load_ports=1))
        assert result.stalls.get("port", 0) >= 5

    def test_branch_flush_recorded(self):
        stream = [(Mov("r1", green(5)), False), (Jmp(B, "r1"), True),
                  (Mov("r2", green(6)), False)]
        result = time_stream(stream, MachineConfig(branch_penalty=7))
        assert result.stalls.get("branch-flush") == 7

    def test_queue_forward_stall_recorded(self):
        pair = [
            (Mov("r1", green(5)), False),
            (Mov("r2", green(256)), False),
            (Store(G, "r2", "r1"), False),
            (Mov("r3", blue(5)), False),
            (Mov("r4", blue(256)), False),
            (Store(B, "r4", "r3"), False),
        ]
        result = time_stream(pair, MachineConfig(queue_forward_latency=9))
        assert result.stalls.get("queue-forward", 0) > 0

    def test_kernel_stall_breakdown_sums_sensibly(self):
        compiled = compile_source(self.SRC if hasattr(self, "SRC") else """
        array out[8];
        var i = 0;
        while (i < 5) { out[i] = i * 3; i = i + 1; }
        """, mode="ft")
        result = simulate(compiled, DEFAULT_CONFIG)
        assert sum(result.stalls.values()) < result.cycles * 6
        assert "operand" in result.stalls
