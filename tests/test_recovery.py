"""Tests for the checkpoint/rollback/replay recovery extension.

The end-to-end property: detection (the paper) + recovery (our extension)
= *masking* -- every single-fault run of a well-typed program produces
exactly the fault-free observable output.
"""

import pytest

from repro.core import Outcome, RegZap, ReproError, run_to_completion
from repro.core.faults import fault_sites
from repro.core.machine import Machine
from repro.injection.values import representative_values, with_value
from repro.recovery import RecoveringMachine
from tests.helpers import countdown_loop_program, paper_store_program


class TestBasicRecovery:
    def test_fault_free_run_matches_plain_machine(self):
        program = countdown_loop_program(3)
        plain = run_to_completion(program.boot())
        recovered = RecoveringMachine(program).run()
        assert recovered.outcome is Outcome.HALTED
        assert recovered.outputs == plain.outputs
        assert recovered.recoveries == 0
        assert recovered.replayed_steps == 0

    def test_detected_fault_is_recovered(self):
        program = paper_store_program()
        reference = run_to_completion(program.boot())
        trace = RecoveringMachine(program).run(
            fault=RegZap("r1", 666), fault_at_step=2
        )
        assert trace.outcome is Outcome.HALTED
        assert trace.outputs == reference.outputs  # fully masked
        assert trace.recoveries == 1
        assert trace.replayed_steps > 0

    def test_recovery_counts_checkpoints(self):
        program = countdown_loop_program(3)
        trace = RecoveringMachine(program, checkpoint_interval=8).run()
        assert trace.checkpoints > 1

    def test_zero_recoveries_budget_reports_fault(self):
        program = paper_store_program()
        trace = RecoveringMachine(program).run(
            fault=RegZap("r1", 666), fault_at_step=2, max_recoveries=0
        )
        assert trace.outcome is Outcome.FAULT_DETECTED

    def test_invalid_interval_rejected(self):
        with pytest.raises(ReproError):
            RecoveringMachine(paper_store_program(), checkpoint_interval=0)


class TestEndToEndMasking:
    """Exhaustive single-fault sweeps: recovery turns detection into
    the exact fault-free behavior."""

    @pytest.mark.parametrize("interval", [1, 4, 64])
    def test_store_example_every_register_fault(self, interval):
        program = paper_store_program()
        reference = run_to_completion(program.boot())
        for at_step in range(reference.steps):
            for reg in ("r1", "r2", "r3", "r4", "d"):
                trace = RecoveringMachine(
                    program, checkpoint_interval=interval
                ).run(fault=RegZap(reg, 4242), fault_at_step=at_step,
                      max_steps=10_000)
                assert trace.outcome is Outcome.HALTED, (reg, at_step)
                assert trace.outputs == reference.outputs, (reg, at_step)

    def test_loop_program_sampled_faults_with_values(self):
        program = countdown_loop_program(2)
        reference = run_to_completion(program.boot())
        # Sample every 3rd step, every site, two representative values.
        snapshots = []
        state = program.boot()
        machine = Machine(state)
        while not state.is_terminal:
            snapshots.append(state.clone())
            machine.step()
        for at_step in range(0, len(snapshots), 3):
            base = snapshots[at_step]
            for site in fault_sites(base):
                for value in representative_values(base, site, program)[:2]:
                    trace = RecoveringMachine(program).run(
                        fault=with_value(site, value),
                        fault_at_step=at_step,
                        max_steps=20_000,
                    )
                    assert trace.outcome is Outcome.HALTED
                    assert trace.outputs == reference.outputs

    def test_replay_cost_is_bounded(self):
        # Progressive rollback may try several checkpoints (those taken
        # inside the detection-latency window are corrupted), but the
        # total replayed work stays within a small multiple of the run.
        program = countdown_loop_program(3)
        reference = run_to_completion(program.boot())
        for interval in (1, 8):
            for at_step in range(0, reference.steps, 5):
                trace = RecoveringMachine(
                    program, checkpoint_interval=interval
                ).run(fault=RegZap("r1", 999), fault_at_step=at_step,
                      max_steps=20_000)
                assert trace.outcome is Outcome.HALTED
                assert trace.replayed_steps <= 2 * reference.steps
                if trace.recoveries:
                    # Logical step count excludes replays.
                    assert trace.steps == reference.steps
