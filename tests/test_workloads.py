"""Tests for the benchmark kernels: every kernel must be differential-clean
(interpreter == baseline == FT) and its FT build must type-check.

This is the integration backbone of the reproduction: it exercises the
whole stack (parser, checker, interpreter, compiler, machine, type system)
on realistic programs.
"""

import pytest

from repro.core import Outcome, run_to_completion
from repro.lang import check_source, interpret, parse_source
from repro.workloads import (
    ALL_KERNELS,
    KERNELS,
    MEDIA_KERNELS,
    SPEC_KERNELS,
    compile_kernel,
    kernel_source,
)


def machine_writes(compiled, max_steps=5_000_000):
    trace = run_to_completion(compiled.program.boot(), max_steps=max_steps)
    assert trace.outcome is Outcome.HALTED
    return [
        compiled.lowered.layout.describe(address) + (value,)
        for address, value in trace.outputs
    ]


@pytest.fixture(scope="module")
def references():
    cache = {}
    for name in ALL_KERNELS:
        ast = parse_source(kernel_source(name))
        check_source(ast)
        cache[name] = [(a, i, v) for a, i, v in interpret(ast).writes]
    return cache


class TestSuiteStructure:
    def test_fourteen_plus_kernels(self):
        assert len(ALL_KERNELS) >= 14

    def test_both_suites_represented(self):
        assert len(SPEC_KERNELS) >= 8
        assert len(MEDIA_KERNELS) >= 5

    def test_kernels_have_descriptions(self):
        for kernel in KERNELS.values():
            assert kernel.description
            assert kernel.suite in ("spec", "media")

    def test_kernels_produce_output(self, references):
        for name in ALL_KERNELS:
            assert references[name], f"{name} writes nothing observable"


@pytest.mark.parametrize("name", ALL_KERNELS)
class TestKernels:
    def test_baseline_matches_interpreter(self, name, references):
        compiled = compile_kernel(name, "baseline")
        assert machine_writes(compiled) == references[name]

    def test_ft_matches_interpreter(self, name, references):
        compiled = compile_kernel(name, "ft")
        assert machine_writes(compiled) == references[name]

    def test_ft_typechecks(self, name, references):
        compile_kernel(name, "ft").program.check()

    def test_ft_code_growth(self, name, references):
        baseline = compile_kernel(name, "baseline")
        protected = compile_kernel(name, "ft")
        ratio = protected.program.size / baseline.program.size
        assert 1.4 < ratio < 2.6, f"{name}: unexpected duplication ratio {ratio}"
