"""Unit tests for machine-state components (register file, queue, state)."""

import pytest

from repro.core import (
    Color,
    ColoredValue,
    DEST,
    MachineState,
    Mov,
    PC_B,
    PC_G,
    RegisterFile,
    ReproError,
    Status,
    StoreQueue,
    blue,
    gpr,
    green,
)


class TestColoredValue:
    def test_str_matches_paper_notation(self):
        assert str(green(5)) == "G5"
        assert str(blue(-3)) == "B-3"

    def test_with_value_preserves_color(self):
        v = blue(7).with_value(99)
        assert v == ColoredValue(Color.BLUE, 99)

    def test_color_other(self):
        assert Color.GREEN.other is Color.BLUE
        assert Color.BLUE.other is Color.GREEN

    def test_equality_includes_color(self):
        assert green(1) != blue(1)


class TestRegisterFile:
    def test_initial_bank_shape(self):
        bank = RegisterFile.initial(entry=1, num_gprs=4)
        assert bank.get(PC_G) == green(1)
        assert bank.get(PC_B) == blue(1)
        assert bank.get(DEST) == green(0)
        assert bank.get(gpr(4)) == green(0)

    def test_initial_bank_respects_gpr_colors(self):
        bank = RegisterFile.initial(1, num_gprs=2, gpr_colors={gpr(2): Color.BLUE})
        assert bank.color(gpr(1)) is Color.GREEN
        assert bank.color(gpr(2)) is Color.BLUE

    def test_bump_pcs_increments_both_and_keeps_colors(self):
        bank = RegisterFile.initial(10, num_gprs=1)
        bank.bump_pcs()
        assert bank.get(PC_G) == green(11)
        assert bank.get(PC_B) == blue(11)

    def test_get_unknown_register_raises(self):
        bank = RegisterFile.initial(1, num_gprs=2)
        with pytest.raises(ReproError):
            bank.get("r3")

    def test_set_unknown_register_raises(self):
        bank = RegisterFile.initial(1, num_gprs=2)
        with pytest.raises(ReproError):
            bank.set("r9", green(0))

    def test_clone_is_independent(self):
        bank = RegisterFile.initial(1, num_gprs=2)
        snapshot = bank.clone()
        bank.set(gpr(1), green(42))
        assert snapshot.value(gpr(1)) == 0
        assert bank.value(gpr(1)) == 42

    def test_rejects_bad_register_names(self):
        with pytest.raises(ValueError):
            RegisterFile({"bogus": green(0)})

    def test_value_and_color_accessors(self):
        bank = RegisterFile.initial(1, num_gprs=1)
        bank.set(gpr(1), blue(17))
        assert bank.value(gpr(1)) == 17
        assert bank.color(gpr(1)) is Color.BLUE


class TestStoreQueue:
    def test_push_front_and_back_order(self):
        q = StoreQueue()
        q.push_front(100, 1)
        q.push_front(200, 2)
        # The oldest pair (100, 1) sits at the back, where stB looks.
        assert q.back() == (100, 1)
        assert q.pairs() == ((200, 2), (100, 1))

    def test_pop_back_removes_oldest(self):
        q = StoreQueue([(200, 2), (100, 1)])
        assert q.pop_back() == (100, 1)
        assert q.pairs() == ((200, 2),)

    def test_find_prefers_front_newest(self):
        q = StoreQueue()
        q.push_front(100, 1)
        q.push_front(100, 2)  # newer store to the same address
        assert q.find(100) == (100, 2)

    def test_find_misses(self):
        assert StoreQueue([(1, 2)]).find(3) is None

    def test_back_of_empty_queue_raises(self):
        with pytest.raises(ReproError):
            StoreQueue().back()

    def test_replace_is_positional(self):
        q = StoreQueue([(1, 10), (2, 20)])
        q.replace(1, (2, 99))
        assert q.pairs() == ((1, 10), (2, 99))

    def test_clone_is_independent(self):
        q = StoreQueue([(1, 10)])
        snapshot = q.clone()
        q.push_front(2, 20)
        assert len(snapshot) == 1
        assert len(q) == 2


class TestMachineState:
    def test_address_zero_is_invalid_code(self):
        with pytest.raises(ReproError):
            MachineState(
                regs=RegisterFile.initial(1, num_gprs=1),
                code={0: Mov("r1", green(0))},
                memory={},
            )

    def test_terminal_flags(self):
        state = MachineState(RegisterFile.initial(1, 1), {1: Mov("r1", green(0))}, {})
        assert not state.is_terminal
        state.enter_fault()
        assert state.is_terminal
        assert state.status is Status.FAULT_DETECTED

    def test_halt_flag(self):
        state = MachineState(RegisterFile.initial(1, 1), {1: Mov("r1", green(0))}, {})
        state.halt()
        assert state.status is Status.HALTED

    def test_clone_shares_code_but_not_memory(self):
        code = {1: Mov("r1", green(0))}
        state = MachineState(RegisterFile.initial(1, 1), code, {5: 0})
        copy = state.clone()
        state.memory[5] = 9
        assert copy.memory[5] == 0
        assert copy.code is state.code
