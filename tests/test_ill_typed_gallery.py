"""A gallery of ill-typed programs: every typing premise is load-bearing.

Each test violates exactly one premise of one typing rule (Figure 7) and
asserts the checker rejects the program.  For the most instructive cases
a fault-injection campaign additionally demonstrates that the rejected
program really is silently corruptible -- the premise is not bureaucracy.

Written in textual assembly so each program documents itself.
"""

import pytest

from repro.asm import parse_program
from repro.injection import CampaignConfig, run_campaign
from repro.types import TypeCheckError

HEADER = """
.gprs 8
.data
  word 256 = 0
  word 257 = 0
.code
"""


def reject(body, match=None):
    program = parse_program(HEADER + body)
    with pytest.raises(TypeCheckError) as excinfo:
        program.check()
    if match is not None:
        assert match in str(excinfo.value), str(excinfo.value)
    # The parallel checker must surface the identical first diagnostic
    # (same message, same address) for every ill-typed program.
    with pytest.raises(TypeCheckError) as parallel_excinfo:
        program.check(jobs=2)
    assert str(parallel_excinfo.value) == str(excinfo.value)
    assert parallel_excinfo.value.address == excinfo.value.address
    return program


def corruptible(program, samples=25):
    config = CampaignConfig(max_injection_steps=samples,
                            max_values_per_site=3, max_sites_per_step=8,
                            seed=11)
    report = run_campaign(program, config)
    return report.silent > 0


class TestArithmeticPremises:
    def test_op2r_mixed_colors(self):
        # Principle 2: green may only depend on green.
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 1
  mov r2, B 2
  add r3, r1, r2
  halt
""", match="mix colors")

    def test_op1r_mixed_immediate(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 1
  add r2, r1, B 2
  halt
""", match="mix colors")


class TestStorePremises:
    def test_stG_blue_operands(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, B 256
  mov r2, B 5
  stG r1, r2
  halt
""")

    def test_stB_green_operands_cse_bug(self):
        # The Section 2.2 disaster: blue store reusing green registers.
        program = reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  stB r2, r1
  halt
""")
        assert corruptible(program)

    def test_stB_without_pending_green_store(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, B 256
  mov r2, B 5
  stB r1, r2
  halt
""", match="empty")

    def test_stB_value_disagrees_with_queue(self):
        # Green announced 5; blue tries to commit 6.
        program = reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 6
  mov r4, B 256
  stB r4, r3
  halt
""", match="not provably")

    def test_stB_address_disagrees_with_queue(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 5
  mov r4, B 257
  stB r4, r3
  halt
""", match="not provably")

    def test_store_through_untyped_address(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 999
  mov r2, G 5
  stG r1, r2
  halt
""", match="not a reference")

    def test_unmatched_green_store_before_halt(self):
        # A dangling queue entry at halt: the announced store would never
        # be checked or committed.
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  halt
""", match="uncommitted")


class TestLoadPremises:
    def test_ldG_blue_address(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, B 256
  ldG r2, r1
  halt
""")

    def test_ldB_green_address(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 256
  ldB r2, r1
  halt
""")

    def test_ld_from_integer(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 12345
  ldG r2, r1
  halt
""", match="not a reference")


class TestControlFlowPremises:
    def test_jmpG_with_pending_destination(self):
        # Two green announcements without a blue commit in between.
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G @main2
  jmpG r1
  jmpG r1
  halt
main2:
  .pre [m2: mem, a: int] { r1: (G, int, a), rest: zero } mem m2
  halt
""", match="destination")

    def test_jmpB_without_announcement(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r2, B @main2
  jmpB r2
main2:
  .pre [m2: mem, b: int] { r2: (B, int, b), rest: zero } mem m2
  halt
""")

    def test_jmpB_target_disagrees_with_announcement(self):
        # Green announced main2; blue jumps to main3.
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G @main2
  mov r2, B @main3
  jmpG r1
  jmpB r2
main2:
  .pre [m2: mem, a: int, b: int] { r1: (G, int, a), r2: (B, int, b), rest: zero } mem m2
  halt
main3:
  .pre [m3: mem, a: int, b: int] { r1: (G, int, a), r2: (B, int, b), rest: zero } mem m3
  halt
""", match="different code types")

    def test_jmp_to_non_code_value(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 256
  jmpG r1
  halt
""", match="code pointer")

    def test_bzG_blue_condition(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, B 0
  mov r2, G @main2
  bzG r1, r2
  halt
main2:
  .pre [m2: mem, a: int, b: int] { r1: (B, int, a), r2: (G, int, b), rest: zero } mem m2
  halt
""", match="green")

    def test_bzB_without_green_announcement(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, B 0
  mov r2, B @main2
  bzB r1, r2
  halt
main2:
  .pre [m2: mem, a: int, b: int] { r1: (B, int, a), r2: (B, int, b), rest: zero } mem m2
  halt
""", match="conditional")

    def test_bzB_condition_disagrees(self):
        # Green tested r1 (= 0), blue tests r3 (= 1): different decisions.
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 0
  mov r3, B 1
  mov r2, G @main2
  mov r4, B @main2
  bzG r1, r2
  bzB r3, r4
  halt
main2:
  .pre [m2: mem, a: int, b: int, c: int, e: int] {
      r1: (G, int, a), r2: (G, int, b), r3: (B, int, c), r4: (B, int, e),
      rest: zero
  } mem m2
  halt
""", match="not provably equal")

    def test_jump_with_wrong_register_state(self):
        # Target demands r3 hold 7; it holds 8.
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r3, G 8
  mov r1, G @main2
  mov r2, B @main2
  jmpG r1
  jmpB r2
main2:
  .pre [m2: mem, a: int, b: int] {
      r1: (G, int, a), r2: (B, int, b), r3: (G, int, 7), rest: zero
  } mem m2
  halt
""")

    def test_jump_with_nonempty_queue_to_empty_queue_target(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r5, G 5
  mov r6, G 256
  stG r6, r5
  mov r1, G @main2
  mov r2, B @main2
  jmpG r1
  jmpB r2
main2:
  .pre [m2: mem, a: int, b: int, c: int, e: int] {
      r1: (G, int, a), r2: (B, int, b), r5: (G, int, c), r6: (G, int, e),
      rest: zero
  } queue [] mem m2
  halt
""", match="queue")


class TestStructuralPremises:
    def test_fall_through_into_wrong_precondition(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 3
second:
  .pre [m2: mem] { r1: (G, int, 4), rest: zero } mem m2
  halt
""", match="fall-through")

    def test_fall_off_the_end(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 3
""", match="falls off")

    def test_plain_instruction_rejected(self):
        reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 256
  ld r2, r1
  halt
""", match="unprotected")


class TestSchedulingPremises:
    """The paper's compiler-debugging story applied to *schedulers*: an
    instruction reordering that lets the blue computation observe memory
    at a different time than the green computation is rejected, because
    the two copies' singleton expressions stop being provably equal."""

    def test_blue_load_moved_inside_store_window(self):
        # Legal order: stG ; stB ; ldG ; ldB -- both loads see the new
        # value.  A scheduler that hoists ldB above stB makes the blue
        # copy read stale memory while ldG reads the queue:
        program = reject("""
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 5
  mov r2, G 256
  mov r3, B 5
  mov r4, B 256
  stG r2, r1
  ldG r5, r2
  ldB r6, r4        ; HOISTED: reads memory before the store commits
  stB r4, r3
  mov r7, G 257
  mov r8, B 257
  stG r7, r5
  stB r8, r6        ; green copy is 5, blue copy is stale 0: rejected
  halt
""", match="not provably")
        # And the rejection is justified: fault-free the two builds agree
        # only by luck of the initial memory; re-ordered code really can
        # publish a green/blue disagreement... here the checker catches it
        # even though THIS run happens to differ already fault-free.

    def test_correctly_scheduled_version_accepted(self):
        # The same code with ldB after the commit type-checks.
        program = parse_program(HEADER + """
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 5
  mov r2, G 256
  mov r3, B 5
  mov r4, B 256
  stG r2, r1
  ldG r5, r2
  stB r4, r3
  ldB r6, r4
  mov r7, G 257
  mov r8, B 257
  stG r7, r5
  stB r8, r6
  halt
""")
        program.check()

    def test_green_load_may_float_between_the_pair(self):
        # The queue-forwarding rule ldG-queue exists precisely to give
        # the scheduler this freedom: a green load between stG and stB is
        # fine (it reads the pending store from the queue).
        program = parse_program(HEADER + """
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 5
  mov r2, G 256
  mov r3, B 5
  mov r4, B 256
  stG r2, r1
  ldG r5, r2        ; between the pair: reads the queue
  stB r4, r3
  ldB r6, r4
  mov r7, G 257
  mov r8, B 257
  stG r7, r5
  stB r8, r6
  halt
""")
        program.check()
