"""Cross-cutting property-based tests: algebraic laws of the core objects.

Each class pins down laws the rest of the system silently relies on:
subtyping is a preorder, similarity is an equivalence-up-to-zap, the
static operator denotations agree with the machine ALU, the store queue
behaves as a FIFO with front-first search, and colored values survive
fault application with their tags intact.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ALU_OPS,
    Color,
    ColoredValue,
    StoreQueue,
    alu_eval,
    blue,
    green,
)
from repro.statics import (
    BinExpr,
    IntConst,
    KindContext,
    KIND_INT,
    denote,
    prove_equal,
    var,
)
from repro.types import INT, IntType, RefType, RegType, is_subtype
from repro.verify import sim_value

DELTA = KindContext({"x": KIND_INT, "y": KIND_INT})

colors = st.sampled_from([Color.GREEN, Color.BLUE])
small_ints = st.integers(-100, 100)
ops = st.sampled_from(sorted(ALU_OPS))


# ---------------------------------------------------------------------------
# ALU / static expression agreement
# ---------------------------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(op=ops, x=small_ints, y=small_ints)
def test_static_denotation_agrees_with_machine_alu(op, x, y):
    # The instruction-typing rules track op results as static BinExprs;
    # soundness needs [[E1 op E2]] == alu_eval(op, ...) exactly.
    expr = BinExpr(op, IntConst(x), IntConst(y))
    assert denote(expr) == alu_eval(op, x, y)


@settings(max_examples=200, deadline=None)
@given(op=ops, x=small_ints, y=small_ints)
def test_prover_validates_constant_applications(op, x, y):
    expr = BinExpr(op, IntConst(x), IntConst(y))
    assert prove_equal(expr, IntConst(alu_eval(op, x, y)), DELTA)


# ---------------------------------------------------------------------------
# Subtyping laws
# ---------------------------------------------------------------------------

basic_types = st.sampled_from([INT, RefType(INT), RefType(RefType(INT))])


@settings(max_examples=100, deadline=None)
@given(color=colors, basic=basic_types, n=small_ints)
def test_subtyping_reflexive(color, basic, n):
    ty = RegType(color, basic, IntConst(n))
    assert is_subtype(ty, ty, DELTA)


@settings(max_examples=100, deadline=None)
@given(color=colors, basic=basic_types, n=small_ints)
def test_subtyping_top_is_int(color, basic, n):
    sub = RegType(color, basic, IntConst(n))
    sup = RegType(color, IntType(), IntConst(n))
    assert is_subtype(sub, sup, DELTA)


@settings(max_examples=100, deadline=None)
@given(color=colors, b1=basic_types, b2=basic_types, b3=basic_types,
       n=small_ints)
def test_subtyping_transitive(color, b1, b2, b3, n):
    e = IntConst(n)
    t1, t2, t3 = (RegType(color, b, e) for b in (b1, b2, b3))
    if is_subtype(t1, t2, DELTA) and is_subtype(t2, t3, DELTA):
        assert is_subtype(t1, t3, DELTA)


@settings(max_examples=100, deadline=None)
@given(color=colors, n=small_ints, m=small_ints)
def test_subtyping_respects_expressions(color, n, m):
    t1 = RegType(color, INT, IntConst(n))
    t2 = RegType(color, INT, IntConst(m))
    assert is_subtype(t1, t2, DELTA) == (n == m)


# ---------------------------------------------------------------------------
# Similarity laws
# ---------------------------------------------------------------------------

zaps = st.sampled_from([None, Color.GREEN, Color.BLUE])
values = st.builds(ColoredValue, colors, small_ints)


@settings(max_examples=200, deadline=None)
@given(v=values, zap=zaps)
def test_similarity_reflexive(v, zap):
    assert sim_value(v, v, zap)


@settings(max_examples=200, deadline=None)
@given(v1=values, v2=values, zap=zaps)
def test_similarity_symmetric(v1, v2, zap):
    assert sim_value(v1, v2, zap) == sim_value(v2, v1, zap)


@settings(max_examples=200, deadline=None)
@given(v1=values, v2=values, v3=values, zap=zaps)
def test_similarity_transitive(v1, v2, v3, zap):
    if sim_value(v1, v2, zap) and sim_value(v2, v3, zap):
        assert sim_value(v1, v3, zap)


@settings(max_examples=200, deadline=None)
@given(v1=values, v2=values)
def test_empty_zap_similarity_is_equality(v1, v2):
    assert sim_value(v1, v2, None) == (v1 == v2)


@settings(max_examples=200, deadline=None)
@given(v1=values, v2=values, zap=zaps)
def test_zap_similarity_weakens_equality(v1, v2, zap):
    if sim_value(v1, v2, None):
        assert sim_value(v1, v2, zap)


# ---------------------------------------------------------------------------
# Store queue laws
# ---------------------------------------------------------------------------

pairs = st.lists(st.tuples(small_ints, small_ints), max_size=8)


@settings(max_examples=200, deadline=None)
@given(contents=pairs)
def test_queue_fifo_order(contents):
    queue = StoreQueue()
    for address, value in contents:
        queue.push_front(address, value)
    popped = [queue.pop_back() for _ in range(len(queue))]
    assert popped == contents  # oldest out first


@settings(max_examples=200, deadline=None)
@given(contents=pairs, probe=small_ints)
def test_queue_find_returns_newest_match(contents, probe):
    queue = StoreQueue()
    for address, value in contents:
        queue.push_front(address, value)
    found = queue.find(probe)
    matches = [pair for pair in reversed(contents) if pair[0] == probe]
    assert found == (matches[0] if matches else None)


@settings(max_examples=100, deadline=None)
@given(contents=pairs)
def test_queue_clone_independence(contents):
    queue = StoreQueue(contents)
    snapshot = queue.clone()
    queue.push_front(9999, 9999)
    assert len(snapshot) == len(contents)


# ---------------------------------------------------------------------------
# Colored values under faults
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(v=values, new=small_ints)
def test_fault_preserves_color_tag(v, new):
    assert v.with_value(new).color is v.color
    assert v.with_value(new).value == new
