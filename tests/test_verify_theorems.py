"""Integration tests of the executable metatheory (Theorems 1-4).

These exercise the paper's formal results on concrete well-typed programs:
the Section 2.2 store sequence and a countdown loop with branches/jumps.
The exhaustive single-event-upset campaigns are the reproduction of the
paper's "perfect fault coverage relative to the fault model" claim.
"""

import pytest

from repro.core import Color, Outcome, RegZap, Status
from repro.core.registers import DEST, PC_B, PC_G
from repro.injection import CampaignConfig, FaultResult, run_campaign
from repro.verify import (
    TheoremViolation,
    TypedExecution,
    check_fault_tolerance,
    check_no_false_positives,
    check_preservation_under_fault,
    check_type_safety,
    zap_color_of,
)
from tests.helpers import countdown_loop_program, paper_store_program


@pytest.fixture(scope="module")
def store_program():
    return paper_store_program()


@pytest.fixture(scope="module")
def loop_program():
    return countdown_loop_program(3)


class TestTypeSafety:
    def test_store_program(self, store_program):
        run = check_type_safety(store_program)
        assert run.status is Status.HALTED
        assert run.outputs == [(256, 5)]
        assert run.checks == run.steps  # every step re-derived |- S

    def test_loop_program(self, loop_program):
        run = check_type_safety(loop_program)
        assert run.status is Status.HALTED
        assert run.outputs == [(256, 3), (256, 2), (256, 1)]

    def test_no_false_positives(self, loop_program):
        run = check_no_false_positives(loop_program)
        assert run.status is Status.HALTED


class TestPreservationUnderFault:
    def test_zap_green_register_stays_typed(self, store_program):
        # Corrupt r1 (green) right after the first mov executes.
        run = check_preservation_under_fault(
            store_program, RegZap("r1", 999), fault_at_step=2
        )
        # The fault must be detected (the output would otherwise change).
        assert run.status is Status.FAULT_DETECTED

    def test_zap_blue_register_stays_typed(self, store_program):
        run = check_preservation_under_fault(
            store_program, RegZap("r3", 999), fault_at_step=8
        )
        assert run.status is Status.FAULT_DETECTED

    def test_zap_pc_detected_at_fetch(self, store_program):
        run = check_preservation_under_fault(
            store_program, RegZap(PC_G, 6), fault_at_step=2
        )
        assert run.status is Status.FAULT_DETECTED

    def test_zap_dest_register(self, loop_program):
        run = check_preservation_under_fault(
            loop_program, RegZap(DEST, 12345), fault_at_step=10
        )
        assert run.status is Status.FAULT_DETECTED

    def test_late_harmless_zap_is_masked(self, store_program):
        # r1 is dead after the green store consumed it... but the blue store
        # still compares r3/r4; zap r1 after the blue store has executed.
        run = check_preservation_under_fault(
            store_program, RegZap("r1", 999), fault_at_step=13
        )
        assert run.status is Status.HALTED
        assert run.outputs == [(256, 5)]

    def test_every_single_fault_site_preserves_typing(self, store_program):
        # Exhaustive over steps x registers with one representative value:
        # TypedExecution raises TheoremViolation if |-_Z S ever fails.
        reference = check_type_safety(store_program)
        for at_step in range(reference.steps):
            for reg in ("r1", "r2", "r3", "r4", PC_G, PC_B, DEST):
                run = check_preservation_under_fault(
                    store_program, RegZap(reg, 4242), fault_at_step=at_step
                )
                assert run.status in (Status.HALTED, Status.FAULT_DETECTED)


class TestZapColor:
    def test_register_zap_color_follows_register(self, store_program):
        state = store_program.boot()
        assert zap_color_of(state, RegZap(PC_B, 0)) is Color.BLUE
        assert zap_color_of(state, RegZap(PC_G, 0)) is Color.GREEN

    def test_queue_zaps_are_green(self, store_program):
        from repro.core import QueueZapAddress, QueueZapValue

        state = store_program.boot()
        assert zap_color_of(state, QueueZapAddress(0, 0)) is Color.GREEN
        assert zap_color_of(state, QueueZapValue(0, 0)) is Color.GREEN


class TestFaultToleranceTheorem:
    def test_store_program_exhaustive(self, store_program):
        report = check_fault_tolerance(store_program)
        assert report.holds, report.violations[:3]
        assert report.campaign.coverage == 1.0
        assert report.campaign.detected > 0
        assert report.campaign.masked > 0

    def test_loop_program_exhaustive(self, loop_program):
        report = check_fault_tolerance(loop_program)
        assert report.holds, report.violations[:3]
        assert report.campaign.coverage == 1.0

    def test_untyped_program_is_not_fault_tolerant(self):
        # The Section 2.2 CSE-broken sequence: the campaign finds silent
        # corruptions, demonstrating why the type checker rejects it.
        from repro.core import Color, Halt, Mov, Store, green
        from repro.program import Program
        from repro.types import INT, RefType

        code = {
            1: Mov("r1", green(5)),
            2: Mov("r2", green(256)),
            3: Store(Color.GREEN, "r2", "r1"),
            4: Store(Color.BLUE, "r2", "r1"),
            5: Halt(),
        }
        program = Program(code=code, data_psi={256: RefType(INT)},
                          initial_memory={256: 0}, num_gprs=4)
        report = check_fault_tolerance(program, require_typed=False)
        assert not report.holds
        assert report.campaign.silent > 0


class TestCampaignMechanics:
    def test_campaign_requires_halting_reference(self):
        from repro.core import Jmp, Mov, green, blue, Color
        from repro.program import Program

        # An infinite loop: 1: jmp setup... simplest: mov/mov/jmpG/jmpB loop.
        code = {
            1: Mov("r1", green(1)),
            2: Mov("r2", blue(1)),
            3: Jmp(Color.GREEN, "r1"),
            4: Jmp(Color.BLUE, "r2"),
        }
        program = Program(code=code, num_gprs=4)
        with pytest.raises(ValueError):
            run_campaign(program, CampaignConfig(max_steps=500))

    def test_step_stride_reduces_injections(self, store_program):
        full = run_campaign(store_program)
        strided = run_campaign(store_program, CampaignConfig(step_stride=3))
        assert 0 < strided.injections < full.injections

    def test_keep_records(self, store_program):
        config = CampaignConfig(keep_records=True, step_stride=5)
        report = run_campaign(store_program, config)
        assert len(report.records) == report.injections
        assert all(r.result in FaultResult for r in report.records)

    def test_classification_prefix_rule(self):
        from repro.core import Trace
        from repro.injection import classify

        reference = Trace(Outcome.HALTED, [(1, 1), (2, 2)], 10)
        detected = Trace(Outcome.FAULT_DETECTED, [(1, 1)], 8)
        assert classify(detected, reference) is FaultResult.DETECTED
        deviated = Trace(Outcome.FAULT_DETECTED, [(9, 9)], 8)
        assert classify(deviated, reference) is FaultResult.SILENT_CORRUPTION
        masked = Trace(Outcome.HALTED, [(1, 1), (2, 2)], 12)
        assert classify(masked, reference) is FaultResult.MASKED
        silent = Trace(Outcome.HALTED, [(1, 1), (2, 3)], 12)
        assert classify(silent, reference) is FaultResult.SILENT_CORRUPTION
        stuck = Trace(Outcome.STUCK, [], 3)
        assert classify(stuck, reference) is FaultResult.STUCK
        running = Trace(Outcome.RUNNING, [(1, 1)], 100)
        assert classify(running, reference) is FaultResult.TIMEOUT


class TestStepwiseSimilarity:
    """Theorem 4 part 1 in its strong form: sim_c holds at every aligned
    step of a faulty run until detection or termination."""

    def test_similarity_for_every_single_fault(self, store_program):
        from repro.verify import check_similarity_along_faulty_run

        reference = check_type_safety(store_program)
        compared_total = 0
        for at_step in range(reference.steps):
            for reg in ("r1", "r2", "r3", "r4", PC_G, PC_B, DEST):
                compared_total += check_similarity_along_faulty_run(
                    store_program, RegZap(reg, 31337), at_step
                )
        assert compared_total > 0

    def test_similarity_on_loop_program(self, loop_program):
        from repro.verify import check_similarity_along_faulty_run

        for at_step in (0, 7, 20, 41):
            for reg in ("r1", "r2", DEST):
                check_similarity_along_faulty_run(
                    loop_program, RegZap(reg, -99), at_step
                )

    def test_queue_zap_similarity(self, store_program):
        from repro.core import QueueZapValue
        from repro.verify import check_similarity_along_faulty_run

        # The queue is non-empty between steps 6 (stG done) and 11 (stB).
        check_similarity_along_faulty_run(
            store_program, QueueZapValue(0, 424242), 6
        )


class TestOutOfBoundsLoadPolicies:
    """The semantics allows an out-of-bounds load to either trap
    (ldG-fail/ldB-fail) or return an arbitrary value (ldG-rand/ldB-rand).
    The theorems hold under both policies -- the arbitrary value lands in
    a register of the already-corrupted color."""

    def _address_fault_program(self):
        # A typed program that loads through a register a fault can
        # redirect out of bounds: the countdown loop loads nothing, so
        # build a loader: out[0] = src[0] * 2 compiled via MWL.
        from repro.compiler import compile_source

        return compile_source("""
        array src[2] = {21, 0};
        array out[2];
        out[0] = src[0] * 2;
        out[1] = src[1] + 1;
        """, mode="ft")

    def test_campaign_under_random_policy(self):
        from repro.core import OobPolicy

        compiled = self._address_fault_program()
        config = CampaignConfig(oob_policy=OobPolicy.RANDOM,
                                max_values_per_site=3)
        report = check_fault_tolerance(compiled.program, config)
        assert report.holds, report.violations[:3]
        assert report.campaign.coverage == 1.0

    def test_campaign_under_trap_policy(self):
        from repro.core import OobPolicy

        compiled = self._address_fault_program()
        config = CampaignConfig(oob_policy=OobPolicy.TRAP,
                                max_values_per_site=3)
        report = check_fault_tolerance(compiled.program, config)
        assert report.holds, report.violations[:3]

    def test_preservation_through_ld_rand(self):
        # Corrupt a green load address to an invalid location under the
        # RANDOM policy: the load yields an arbitrary green value, and the
        # state must remain well-typed under the green zap tag.
        from repro.core import OobPolicy, RegZap, Store, Load, Color

        compiled = self._address_fault_program()
        program = compiled.program
        # Find the first green load and the register it loads through.
        load_address = next(
            address for address, instr in sorted(program.code.items())
            if isinstance(instr, Load) and instr.color is Color.GREEN
        )
        load = program.code[load_address]
        reference = check_type_safety(program)
        # Inject just before each step; the typed executor verifies |-_Z S
        # after every step including the rand load.
        hit_rand = False
        for at_step in range(reference.steps):
            run = check_preservation_under_fault(
                program, RegZap(load.rs, 987654321), at_step,
                oob_policy=OobPolicy.RANDOM,
            )
            assert run.status in (Status.HALTED, Status.FAULT_DETECTED)
            if run.status is Status.FAULT_DETECTED:
                hit_rand = True
        assert hit_rand  # some injection actually perturbed the run
